package fam

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/regretlab/fam/internal/par"
	"github.com/regretlab/fam/internal/sched"
)

// Query is the semantic problem specification: everything that
// determines the answer of a selection (or evaluation) and nothing that
// merely determines how fast it is computed. The paper's objective is a
// function of (dataset, Θ, k, algorithm, ε, σ, N, seed) only — execution
// policy lives in Exec, and two queries with equal Fingerprints always
// produce bit-identical Results regardless of the Exec they run under.
type Query struct {
	// Dataset names a registered dataset when the query is served by an
	// Engine (Select, Evaluate, SelectBatch resolve the data and its
	// distribution Θ from the registry). One-shot queries leave it empty
	// and supply Data and Dist directly.
	Dataset string
	// Data and Dist carry the database and the utility distribution Θ for
	// one-shot Select/Evaluate calls. Engine-served queries leave them nil;
	// the registry is the source of truth there.
	Data *Dataset
	Dist Distribution

	// K is the number of points to select. Required for selection
	// queries; ignored by evaluation queries (ExplicitSet non-nil).
	K int
	// Algorithm picks the solver; the zero value is GreedyShrink.
	Algorithm Algorithm
	// Epsilon and Sigma set the Monte-Carlo error and confidence of
	// Theorem 4; the sample size is then N = ceil(3·ln(1/σ)/ε²). Both
	// default to 0.1 (N = 691). SampleSize overrides them when positive.
	Epsilon float64
	Sigma   float64
	// SampleSize fixes the number of sampled utility functions directly.
	SampleSize int
	// Seed drives all sampling; equal seeds give identical results.
	Seed uint64
	// DisableSkyline turns off the skyline preprocessing that is applied
	// automatically for monotone distributions.
	DisableSkyline bool
	// ExactDiscrete switches from Monte-Carlo sampling to the exact
	// weighted evaluation of the paper's Appendix A. It requires a
	// discrete distribution (e.g. one built with TableUsers).
	ExactDiscrete bool
	// CacheBudget caps the materialized utility matrix (entries); zero
	// uses the default, negative disables caching. It is semantic only in
	// the weak sense that it changes which code path evaluates utilities —
	// results are identical either way — but it shapes the preprocessing
	// artifact, so it participates in the Fingerprint.
	CacheBudget int64
	// Coreset enables the ε-kernel candidate prepass: after the skyline
	// restriction, candidates that are never within CoresetEps of best
	// for any sampled utility function are dropped before the solver
	// runs, shrinking the candidate set by orders of magnitude on large
	// instances. Every user's argmax survives, so the reported metrics
	// remain database-level quantities; what pruning can cost is
	// solution quality, bounded by CoresetEps (the ε-kernel guarantee).
	// It changes answers, so it is a Query knob with its own Fingerprint
	// component. Selection queries only.
	Coreset bool
	// CoresetEps is the kernel tolerance in [0, 1): a candidate survives
	// the prepass when it reaches (1−CoresetEps) of some user's best
	// utility. Zero uses DefaultCoresetEps. Requires Coreset.
	CoresetEps float64
	// Float32 stores the materialized utility matrix in float32, halving
	// its resident bytes — the difference between fitting the cache
	// budget or recomputing per lookup on large instances. Results are
	// bit-deterministic within the mode (the uncached path rounds
	// identically, so the cache budget still never changes answers) but
	// numerically differ from float64 runs by the rounding (~1e-7
	// relative on ARR), so it is opt-in, stats-tolerant, and carries its
	// own Fingerprint component.
	Float32 bool

	// ExplicitSet turns the query into an evaluation: instead of solving
	// for K points, the Metrics of these dataset row indices are measured
	// under the query's sampling parameters. Evaluate requires it; Select
	// rejects it.
	ExplicitSet []int
}

// Exec is the execution policy: knobs that change how fast a query runs
// but never what it answers. PR 1–3 established bit-identity of every
// solver across all of these; keeping them out of Query is what lets an
// Engine share one cached result across every execution configuration.
type Exec struct {
	// Parallelism bounds the worker goroutines used for preprocessing and
	// for the per-candidate evaluations inside every solver. All parallel
	// reductions break ties to the lowest index, so results are
	// bit-identical at any setting. Zero uses every CPU (GOMAXPROCS); one
	// forces serial execution.
	Parallelism int
	// LazyBatch sets the refresh batch size of GreedyShrinkLazy: up to
	// LazyBatch stale evaluation-queue entries are re-evaluated
	// concurrently instead of one at a time. Selected sets and all quality
	// metrics are identical at any batch size; only the work counters in
	// Telemetry move. Zero or one keeps the paper's serial pop-refresh
	// loop. Ignored by every other algorithm.
	LazyBatch int

	// Priority is the query's scheduling class. Under load, the shared
	// pool's grant policy serves queued helper requests of higher classes
	// first (weighted priority, then earliest deadline, then arrival);
	// with idle helpers every class runs immediately. The zero value is
	// PriorityNormal. Like every Exec knob it never changes an answer —
	// only when the work is granted helpers.
	Priority Priority
	// Deadline is the query's absolute completion deadline (zero = none).
	// Admission control sheds a query whose deadline has already passed
	// (ErrShed — it never consumes solver time); an admitted query runs
	// under a context bounded by the deadline, so overrunning work stops
	// with context.DeadlineExceeded. The deadline also participates in
	// the pool's earliest-deadline-first grant ordering.
	Deadline time.Time
	// Weight, when positive, overrides the query's class weight in the
	// pool's weighted grant policy — the per-tenant knob: a tenant
	// granted Weight 8 within PriorityNormal outranks default normal
	// traffic (and accrues starvation-relief deficit at its own rate)
	// without occupying a whole priority class. Zero uses the class
	// weight. Like Priority it never changes an answer.
	Weight int
	// MaxQueue bounds the pool's grant-queue depth this query will accept
	// on admission: when more helper requests than MaxQueue are already
	// queued, the Engine sheds the query (ErrShed) instead of piling on.
	// Zero accepts any depth. One-shot queries (no shared pool) ignore
	// it. A SelectBatch checks the bound once for the whole batch — an
	// admitted batch's members never shed on each other's tickets.
	MaxQueue int

	// pool is the long-lived worker pool the query's shard fan-outs are
	// multiplexed over. It is engine-owned plumbing: fam.Engine sets it to
	// its process-wide pool; one-shot queries leave it nil and spawn
	// per-call workers.
	pool *par.Pool
	// wait is the per-query queue-wait counter the engine attaches so
	// every helper grant of this query's fan-outs attributes its
	// enqueue-to-grant latency back to the query's Telemetry.QueueWait.
	wait *sched.WaitCounter
}

// Priority is a query's scheduling class. Classes order queued helper
// grants under load; they never change results. The zero value is
// PriorityNormal.
type Priority int8

// The scheduling classes, lowest to highest urgency.
const (
	PriorityLow    Priority = -1
	PriorityNormal Priority = 0
	PriorityHigh   Priority = 1
)

// String returns the class name used by flags, JSON, and headers.
func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	default:
		return fmt.Sprintf("priority(%d)", int(p))
	}
}

// ParsePriority maps a class name (case-insensitive; empty = normal)
// back to the Priority. Unknown names wrap ErrBadOptions.
func ParsePriority(s string) (Priority, error) {
	switch strings.ToLower(s) {
	case "", "normal":
		return PriorityNormal, nil
	case "low":
		return PriorityLow, nil
	case "high":
		return PriorityHigh, nil
	default:
		return 0, fmt.Errorf("%w: unknown priority %q (want low|normal|high)", ErrBadOptions, s)
	}
}

// MarshalText implements encoding.TextMarshaler; JSON surfaces carry
// priorities by name.
func (p Priority) MarshalText() ([]byte, error) {
	if p < PriorityLow || p > PriorityHigh {
		return nil, fmt.Errorf("%w: unknown priority %d", ErrBadOptions, int(p))
	}
	return []byte(p.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler via ParsePriority.
func (p *Priority) UnmarshalText(text []byte) error {
	v, err := ParsePriority(string(text))
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// ErrShed is returned when admission control rejects a query before any
// solver work runs: its Deadline had already passed on arrival, or the
// engine's grant queue was deeper than its MaxQueue bound. Shed queries
// consumed no helper time — clients should back off and retry (the
// serve layer answers 429). Match it with errors.Is.
var ErrShed = errors.New("fam: query shed by admission control")

// attrs converts the Exec's scheduling fields to the internal form.
func (x Exec) attrs() sched.Attrs {
	return sched.Attrs{Priority: sched.Priority(x.Priority), Deadline: x.Deadline, Weight: x.Weight, Wait: x.wait}
}

// fillAttrs are the scheduling attrs detached cache fills run under:
// the requester's class and deadline for grant ordering, but the
// deadline is soft — a fill outliving its triggering request is shared
// infrastructure that should complete and be stored, not be shed
// halfway. The requester's own wait is still bounded by its context
// deadline.
func (x Exec) fillAttrs() sched.Attrs {
	return sched.Attrs{Priority: sched.Priority(x.Priority), Deadline: x.Deadline, Weight: x.Weight, SoftDeadline: true, Wait: x.wait}
}

// admit applies the Exec's admission policy: a deadline that has
// already passed sheds the query, and (when depth reports a shared
// pool's grant queue) a queue deeper than MaxQueue sheds it too.
func (x Exec) admit(depth func() int) error {
	if !x.Deadline.IsZero() && !time.Now().Before(x.Deadline) {
		return fmt.Errorf("%w: deadline %s already passed", ErrShed, x.Deadline.Format(time.RFC3339Nano))
	}
	if x.MaxQueue > 0 && depth != nil {
		if d := depth(); d > x.MaxQueue {
			return fmt.Errorf("%w: %d helper requests queued (MaxQueue %d)", ErrShed, d, x.MaxQueue)
		}
	}
	return nil
}

// schedContext derives the execution context of an admitted query: the
// scheduling attrs attached for the pool's grant policy, and the
// context bounded by the deadline when one is set. The returned cancel
// must be called.
func (x Exec) schedContext(ctx context.Context) (context.Context, context.CancelFunc) {
	ctx = sched.NewContext(ctx, x.attrs())
	if x.Deadline.IsZero() {
		return ctx, func() {}
	}
	return context.WithDeadline(ctx, x.Deadline)
}

// withPool returns a copy of the Exec carrying the given worker pool.
func (x Exec) withPool(p *par.Pool) Exec {
	x.pool = p
	return x
}

// withWait returns a copy of the Exec carrying a per-query queue-wait
// counter; the engine attaches one per accepted query.
func (x Exec) withWait(w *sched.WaitCounter) Exec {
	x.wait = w
	return x
}

// Telemetry reports how a query was executed: timings and work counters
// that depend on the Exec (worker counts, dispatch batches, speculative
// refreshes) and therefore do not belong in the cacheable Result. A
// result-cache hit reports the hit's own execution (its timings are the
// cache lookup's, near zero) and carries the filling execution's
// Telemetry under Replay.
type Telemetry struct {
	// Preprocess covers skyline computation, utility sampling and
	// best-point indexing; Query covers the selection algorithm itself —
	// the paper's two timing columns. An Engine reports the time its
	// caches actually spent: Preprocess is near zero when the artifacts
	// were already built.
	Preprocess time.Duration
	Query      time.Duration
	// QueueWait is the time the query spent waiting on the engine's
	// scheduling machinery: the summed enqueue-to-grant latency of the
	// query's own helper tickets on the shared pool (attributed per
	// query on the direct Select/Evaluate path as well as for batch
	// members), plus — for batch members only — the wait for their plan
	// slot behind the group's representative and the batch's width
	// bound. Shared preprocessing builds (skyline indexes, dataset-wide
	// instances) are infrastructure, not one request's work, so their
	// grant waits stay out of every query's QueueWait; the engine-wide
	// sum including them is EngineStats.Sched.QueueWait.
	QueueWait time.Duration
	// Stats carries the GREEDY-SHRINK / GreedyAdd work counters when
	// applicable (iterations, evaluations, lazy skips, worker dispatch,
	// speculative refresh accounting).
	Stats ShrinkStats
	// Replay carries the Telemetry of the execution that filled the
	// result-cache entry when this query was answered from the cache
	// (Result.Cached). The top-level fields describe THIS query's
	// execution — a hit's Preprocess/Query are the cache lookup's (near
	// zero) and QueueWait is the hit's own admission wait — while Replay
	// preserves what the original computation cost. Nil on misses and
	// one-shot queries.
	Replay *Telemetry
	// Trace is the query's finished span tree when the request was traced
	// (Engine.Select under a TraceContext, or serve with exec.trace /
	// X-Fam-Trace). It describes this execution — never replayed from the
	// cache: a hit's trace shows the lookup, not the fill. Nil when
	// tracing is off.
	Trace *TraceSpan
}

// Fingerprint returns the canonical cache identity of the query: a
// stable string over the semantic fields only, with the sampling
// parameters resolved (Epsilon/Sigma folded into the effective sample
// size) and the cache budget normalized. Two queries with the same
// Fingerprint produce bit-identical Results under any Exec — this is the
// key the Engine's result cache uses, which is why equal-seed queries
// share entries across parallelism settings.
//
// The dataset is identified by name — Dataset (the registry name) or,
// for one-shot queries, Data.Name — not by content. Engine registries
// enforce name uniqueness, so the guarantee is unconditional there;
// callers keying their own caches over one-shot queries must likewise
// ensure a name refers to one dataset (two different datasets loaded
// under the same name fingerprint identically). Fingerprint fails on
// queries whose sampling parameters are invalid or whose Algorithm is
// unknown.
func (q Query) Fingerprint() (string, error) {
	name := q.Dataset
	if name == "" && q.Data != nil {
		name = q.Data.Name
	}
	sampleSize := 0
	if !q.ExactDiscrete {
		n, err := resolveSampleSize(q.Epsilon, q.Sigma, q.SampleSize)
		if err != nil {
			return "", err
		}
		sampleSize = n
	}
	var sb strings.Builder
	if q.ExplicitSet != nil {
		// Evaluation queries: K and Algorithm are ignored, the set is the
		// identity.
		fmt.Fprintf(&sb, "eval|%s|seed=%d|N=%d|exact=%t|budget=%d",
			name, q.Seed, sampleSize, q.ExactDiscrete, effectiveBudget(q.CacheBudget))
		if q.Float32 {
			sb.WriteString("|f32=t")
		}
		sb.WriteString("|set=")
		for i, idx := range q.ExplicitSet {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(idx))
		}
		return sb.String(), nil
	}
	if q.Algorithm < GreedyShrink || q.Algorithm > GreedyAdd {
		return "", fmt.Errorf("%w: unknown algorithm %d", ErrBadOptions, int(q.Algorithm))
	}
	fmt.Fprintf(&sb, "sel|%s|algo=%s|k=%d|seed=%d|N=%d|exact=%t|nosky=%t|budget=%d",
		name, q.Algorithm, q.K, q.Seed, sampleSize, q.ExactDiscrete,
		q.DisableSkyline, effectiveBudget(q.CacheBudget))
	// Opt-in semantic knobs append conditionally so fingerprints of
	// queries that never touch them are byte-stable across releases.
	if q.Coreset {
		eps, err := resolveCoresetEps(q.CoresetEps)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "|cs=%g", eps)
	}
	if q.Float32 {
		sb.WriteString("|f32=t")
	}
	return sb.String(), nil
}
