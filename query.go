package fam

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/regretlab/fam/internal/par"
)

// Query is the semantic problem specification: everything that
// determines the answer of a selection (or evaluation) and nothing that
// merely determines how fast it is computed. The paper's objective is a
// function of (dataset, Θ, k, algorithm, ε, σ, N, seed) only — execution
// policy lives in Exec, and two queries with equal Fingerprints always
// produce bit-identical Results regardless of the Exec they run under.
type Query struct {
	// Dataset names a registered dataset when the query is served by an
	// Engine (Select, Evaluate, SelectBatch resolve the data and its
	// distribution Θ from the registry). One-shot queries leave it empty
	// and supply Data and Dist directly.
	Dataset string
	// Data and Dist carry the database and the utility distribution Θ for
	// one-shot Select/Evaluate calls. Engine-served queries leave them nil;
	// the registry is the source of truth there.
	Data *Dataset
	Dist Distribution

	// K is the number of points to select. Required for selection
	// queries; ignored by evaluation queries (ExplicitSet non-nil).
	K int
	// Algorithm picks the solver; the zero value is GreedyShrink.
	Algorithm Algorithm
	// Epsilon and Sigma set the Monte-Carlo error and confidence of
	// Theorem 4; the sample size is then N = ceil(3·ln(1/σ)/ε²). Both
	// default to 0.1 (N = 691). SampleSize overrides them when positive.
	Epsilon float64
	Sigma   float64
	// SampleSize fixes the number of sampled utility functions directly.
	SampleSize int
	// Seed drives all sampling; equal seeds give identical results.
	Seed uint64
	// DisableSkyline turns off the skyline preprocessing that is applied
	// automatically for monotone distributions.
	DisableSkyline bool
	// ExactDiscrete switches from Monte-Carlo sampling to the exact
	// weighted evaluation of the paper's Appendix A. It requires a
	// discrete distribution (e.g. one built with TableUsers).
	ExactDiscrete bool
	// CacheBudget caps the materialized utility matrix (entries); zero
	// uses the default, negative disables caching. It is semantic only in
	// the weak sense that it changes which code path evaluates utilities —
	// results are identical either way — but it shapes the preprocessing
	// artifact, so it participates in the Fingerprint.
	CacheBudget int64

	// ExplicitSet turns the query into an evaluation: instead of solving
	// for K points, the Metrics of these dataset row indices are measured
	// under the query's sampling parameters. Evaluate requires it; Select
	// rejects it.
	ExplicitSet []int
}

// Exec is the execution policy: knobs that change how fast a query runs
// but never what it answers. PR 1–3 established bit-identity of every
// solver across all of these; keeping them out of Query is what lets an
// Engine share one cached result across every execution configuration.
type Exec struct {
	// Parallelism bounds the worker goroutines used for preprocessing and
	// for the per-candidate evaluations inside every solver. All parallel
	// reductions break ties to the lowest index, so results are
	// bit-identical at any setting. Zero uses every CPU (GOMAXPROCS); one
	// forces serial execution.
	Parallelism int
	// LazyBatch sets the refresh batch size of GreedyShrinkLazy: up to
	// LazyBatch stale evaluation-queue entries are re-evaluated
	// concurrently instead of one at a time. Selected sets and all quality
	// metrics are identical at any batch size; only the work counters in
	// Telemetry move. Zero or one keeps the paper's serial pop-refresh
	// loop. Ignored by every other algorithm.
	LazyBatch int

	// pool is the long-lived worker pool the query's shard fan-outs are
	// multiplexed over. It is engine-owned plumbing: fam.Engine sets it to
	// its process-wide pool; one-shot queries leave it nil and spawn
	// per-call workers. (Future policy knobs — NUMA placement, deadlines,
	// priority — belong here too.)
	pool *par.Pool
}

// withPool returns a copy of the Exec carrying the given worker pool.
func (x Exec) withPool(p *par.Pool) Exec {
	x.pool = p
	return x
}

// Telemetry reports how a query was executed: timings and work counters
// that depend on the Exec (worker counts, dispatch batches, speculative
// refreshes) and therefore do not belong in the cacheable Result. A
// result-cache hit replays the Telemetry of the execution that originally
// computed the entry.
type Telemetry struct {
	// Preprocess covers skyline computation, utility sampling and
	// best-point indexing; Query covers the selection algorithm itself —
	// the paper's two timing columns. An Engine reports the time its
	// caches actually spent: Preprocess is near zero when the artifacts
	// were already built.
	Preprocess time.Duration
	Query      time.Duration
	// Stats carries the GREEDY-SHRINK / GreedyAdd work counters when
	// applicable (iterations, evaluations, lazy skips, worker dispatch,
	// speculative refresh accounting).
	Stats ShrinkStats
}

// Fingerprint returns the canonical cache identity of the query: a
// stable string over the semantic fields only, with the sampling
// parameters resolved (Epsilon/Sigma folded into the effective sample
// size) and the cache budget normalized. Two queries with the same
// Fingerprint produce bit-identical Results under any Exec — this is the
// key the Engine's result cache uses, which is why equal-seed queries
// share entries across parallelism settings.
//
// The dataset is identified by name — Dataset (the registry name) or,
// for one-shot queries, Data.Name — not by content. Engine registries
// enforce name uniqueness, so the guarantee is unconditional there;
// callers keying their own caches over one-shot queries must likewise
// ensure a name refers to one dataset (two different datasets loaded
// under the same name fingerprint identically). Fingerprint fails on
// queries whose sampling parameters are invalid or whose Algorithm is
// unknown.
func (q Query) Fingerprint() (string, error) {
	name := q.Dataset
	if name == "" && q.Data != nil {
		name = q.Data.Name
	}
	sampleSize := 0
	if !q.ExactDiscrete {
		n, err := resolveSampleSize(q.Epsilon, q.Sigma, q.SampleSize)
		if err != nil {
			return "", err
		}
		sampleSize = n
	}
	var sb strings.Builder
	if q.ExplicitSet != nil {
		// Evaluation queries: K and Algorithm are ignored, the set is the
		// identity.
		fmt.Fprintf(&sb, "eval|%s|seed=%d|N=%d|exact=%t|budget=%d|set=",
			name, q.Seed, sampleSize, q.ExactDiscrete, effectiveBudget(q.CacheBudget))
		for i, idx := range q.ExplicitSet {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(idx))
		}
		return sb.String(), nil
	}
	if q.Algorithm < GreedyShrink || q.Algorithm > GreedyAdd {
		return "", fmt.Errorf("%w: unknown algorithm %d", ErrBadOptions, int(q.Algorithm))
	}
	fmt.Fprintf(&sb, "sel|%s|algo=%s|k=%d|seed=%d|N=%d|exact=%t|nosky=%t|budget=%d",
		name, q.Algorithm, q.K, q.Seed, sampleSize, q.ExactDiscrete,
		q.DisableSkyline, effectiveBudget(q.CacheBudget))
	return sb.String(), nil
}
