package fam

import (
	"context"
	"time"
)

// SelectOptions is the pre-split query/execution configuration of the v1
// API: it mixes semantic fields (K, Algorithm, sampling parameters) with
// execution policy (Parallelism, LazyBatch) in one struct. Split divides
// it into the two halves.
//
// Deprecated: build a Query and an Exec directly and call Select,
// Evaluate, or the Engine methods taking them. SelectOptions remains as
// a compatibility shim only.
type SelectOptions struct {
	// K is the number of points to select. Required.
	K int
	// Algorithm picks the solver; the zero value is GreedyShrink.
	Algorithm Algorithm
	// Epsilon and Sigma set the Monte-Carlo error and confidence of
	// Theorem 4; SampleSize overrides them when positive.
	Epsilon float64
	Sigma   float64
	// SampleSize fixes the number of sampled utility functions directly.
	SampleSize int
	// Seed drives all sampling; equal seeds give identical results.
	Seed uint64
	// DisableSkyline turns off the skyline preprocessing that is applied
	// automatically for monotone distributions.
	DisableSkyline bool
	// CacheBudget caps the materialized utility matrix (entries); zero
	// uses the default, negative disables caching.
	CacheBudget int64
	// ExactDiscrete switches from Monte-Carlo sampling to the exact
	// weighted evaluation of the paper's Appendix A.
	ExactDiscrete bool
	// Parallelism bounds worker goroutines (execution policy — see
	// Exec.Parallelism).
	Parallelism int
	// LazyBatch sets the lazy strategy's refresh batch size (execution
	// policy — see Exec.LazyBatch).
	LazyBatch int
}

// Split divides the combined options into their semantic half (a Query,
// without a dataset binding) and their execution half (an Exec). It is
// the exact mapping the deprecated shims apply internally.
func (o SelectOptions) Split() (Query, Exec) {
	q := Query{
		K:              o.K,
		Algorithm:      o.Algorithm,
		Epsilon:        o.Epsilon,
		Sigma:          o.Sigma,
		SampleSize:     o.SampleSize,
		Seed:           o.Seed,
		DisableSkyline: o.DisableSkyline,
		ExactDiscrete:  o.ExactDiscrete,
		CacheBudget:    o.CacheBudget,
	}
	return q, Exec{Parallelism: o.Parallelism, LazyBatch: o.LazyBatch}
}

// LegacyResult is the v1 combined result shape: quality outputs and
// execution telemetry in one struct. The deprecated shims assemble it
// from the split (Result, Telemetry) pair.
//
// Deprecated: use Result and Telemetry.
type LegacyResult struct {
	// Indices of the selected points in the dataset, ascending.
	Indices []int
	// Labels of the selected points (row labels or synthesized).
	Labels []string
	// Metrics of the selection measured on the sampled users.
	Metrics Metrics
	// ExactARR is the exact average regret ratio when the algorithm
	// computes one (DP2D); negative otherwise.
	ExactARR float64
	// SkylineSize is the candidate count after skyline preprocessing.
	SkylineSize int
	// Preprocess and Query are the paper's two timing columns. A
	// result-cache hit (Cached true) carries the timings of the original
	// computation it replays.
	Preprocess time.Duration
	Query      time.Duration
	// QueueWait is the time the query spent waiting on the engine's
	// scheduling machinery (see Telemetry.QueueWait); zero for one-shot
	// calls, which never queue.
	QueueWait time.Duration
	// Cached reports that the result was answered from an Engine's
	// result cache; always false for one-shot calls.
	Cached bool
	// Stats carries GREEDY-SHRINK work counters when applicable.
	Stats ShrinkStats
}

// mergeLegacy folds a (Result, Telemetry) pair back into the v1 shape.
// The v1 contract is frozen: a cache hit carries the timings of the
// computation it replays, so when the Telemetry reports a hit's own
// (near-zero) execution with the filler under Replay, the fold reads
// the replayed timings back out — QueueWait as the hit's own wait plus
// the replayed wait, matching what v1 always summed into one number.
func mergeLegacy(res *Result, tel *Telemetry) *LegacyResult {
	src, queueWait := tel, tel.QueueWait
	if tel.Replay != nil {
		src = tel.Replay
		queueWait += tel.Replay.QueueWait
	}
	return &LegacyResult{
		Indices:     res.Indices,
		Labels:      res.Labels,
		Metrics:     res.Metrics,
		ExactARR:    res.ExactARR,
		SkylineSize: res.SkylineSize,
		Preprocess:  src.Preprocess,
		Query:       src.Query,
		QueueWait:   queueWait,
		Cached:      res.Cached,
		Stats:       src.Stats,
	}
}

// SelectWithOptions is the v1 one-shot entry point: it splits opts into
// (Query, Exec), binds the dataset and distribution, and delegates to
// Select.
//
// Deprecated: use Select with a Query and an Exec.
func SelectWithOptions(ctx context.Context, ds *Dataset, dist Distribution, opts SelectOptions) (*LegacyResult, error) {
	q, exec := opts.Split()
	q.Data, q.Dist = ds, dist
	res, tel, err := Select(ctx, q, exec)
	if err != nil {
		return nil, err
	}
	return mergeLegacy(res, tel), nil
}

// EvaluateWithOptions is the v1 one-shot evaluation entry point.
//
// Deprecated: use Evaluate with a Query carrying ExplicitSet.
func EvaluateWithOptions(ctx context.Context, ds *Dataset, dist Distribution, set []int, opts SelectOptions) (Metrics, error) {
	q, exec := opts.Split()
	q.Data, q.Dist, q.ExplicitSet = ds, dist, set
	return Evaluate(ctx, q, exec)
}

// SelectWithOptions is the v1 Engine entry point against a registered
// dataset.
//
// Deprecated: use Engine.Select with a Query naming the dataset.
func (e *Engine) SelectWithOptions(ctx context.Context, dataset string, opts SelectOptions) (*LegacyResult, error) {
	q, exec := opts.Split()
	q.Dataset = dataset
	res, tel, err := e.Select(ctx, q, exec)
	if err != nil {
		return nil, err
	}
	return mergeLegacy(res, tel), nil
}

// EvaluateWithOptions is the v1 Engine evaluation entry point.
//
// Deprecated: use Engine.Evaluate with a Query carrying ExplicitSet.
func (e *Engine) EvaluateWithOptions(ctx context.Context, dataset string, set []int, opts SelectOptions) (Metrics, error) {
	q, exec := opts.Split()
	q.Dataset, q.ExplicitSet = dataset, set
	return e.Evaluate(ctx, q, exec)
}
