package fam

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/regretlab/fam/internal/obs"
)

var updateTraceShape = flag.Bool("update-trace-shape", false,
	"rewrite testdata/trace_shape.golden from the current span structure")

// The span tree of a fixed (Query, Exec) is structurally deterministic:
// identical names, nesting, counts, and attributes at any worker count —
// only durations and pool-grant events vary, and Shape excludes both.
// The golden file pins the cold (cache-filling) and warm (result-cache
// hit) shapes; `go test -run TraceSpanShape -update-trace-shape .`
// regenerates it after an intentional structure change.
func TestTraceSpanShapeGolden(t *testing.T) {
	q := Query{Dataset: "hotels", K: 5, Seed: 9, SampleSize: 120}
	shapes := map[int]string{}
	var warm string
	for _, workers := range []int{1, 8} {
		e := NewEngine(EngineConfig{Workers: workers})
		for _, f := range engineFixtures(t) {
			if err := e.Register(f.name, f.ds, f.dist); err != nil {
				t.Fatal(err)
			}
		}
		exec := Exec{Parallelism: workers}
		res, tel, err := e.Select(TraceContext(context.Background(), ""), q, exec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached || tel.Trace == nil {
			t.Fatalf("workers=%d: cold select: cached=%t trace=%v", workers, res.Cached, tel.Trace)
		}
		shapes[workers] = tel.Trace.Shape()
		if workers == 1 {
			res2, tel2, err := e.Select(TraceContext(context.Background(), ""), q, exec)
			if err != nil {
				t.Fatal(err)
			}
			if !res2.Cached || tel2.Trace == nil {
				t.Fatalf("warm select: cached=%t trace=%v", res2.Cached, tel2.Trace)
			}
			warm = tel2.Trace.Shape()
		}
		e.Close()
	}
	if shapes[1] != shapes[8] {
		t.Fatalf("span shape varies with worker count:\n-- workers 1 --\n%s-- workers 8 --\n%s", shapes[1], shapes[8])
	}
	golden := "-- cold --\n" + shapes[1] + "-- warm --\n" + warm
	path := filepath.Join("testdata", "trace_shape.golden")
	if *updateTraceShape {
		if err := os.WriteFile(path, []byte(golden), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-trace-shape to generate)", err)
	}
	if golden != string(want) {
		t.Fatalf("span shape drifted from golden:\n-- got --\n%s\n-- want --\n%s", golden, want)
	}
}

// The telemetry replay contract: a cold call reports its own execution
// with no Replay; a result-cache hit reports its own (near-zero)
// execution with the filler's telemetry under Replay; traces are never
// replayed from the cache — each call's Trace is its own, and an
// untraced call has none.
func TestTraceIDReplayTelemetry(t *testing.T) {
	e := newTestEngine(t, engineFixtures(t))
	q := Query{Dataset: "hotels", K: 4, Seed: 3, SampleSize: 100}

	traceID := strings.Repeat("ab", 16)
	ctx := TraceContext(context.Background(), traceID)
	if got := TraceIDFromContext(ctx); got != traceID {
		t.Fatalf("TraceIDFromContext = %q, want %q", got, traceID)
	}
	res1, tel1, err := e.Select(ctx, q, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cached || tel1.Replay != nil {
		t.Fatalf("cold call: cached=%t replay=%v", res1.Cached, tel1.Replay)
	}
	if tel1.Trace == nil || tel1.Trace.TraceID != traceID {
		t.Fatalf("cold trace not under the client's trace ID: %+v", tel1.Trace)
	}

	res2, tel2, err := e.Select(TraceContext(context.Background(), ""), q, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Fatal("second identical select did not hit the result cache")
	}
	if tel2.Replay == nil {
		t.Fatal("hit telemetry carries no Replay")
	}
	if tel2.Replay.Preprocess != tel1.Preprocess || tel2.Replay.Query != tel1.Query || tel2.Replay.Stats != tel1.Stats {
		t.Fatalf("Replay is not the filler's telemetry: %+v vs %+v", tel2.Replay, tel1)
	}
	if tel2.Replay.Trace != nil {
		t.Fatal("a trace was replayed from the cache; traces must describe their own execution")
	}
	if tel2.Trace == nil || !strings.Contains(tel2.Trace.Shape(), "hit=true") {
		t.Fatalf("hit trace missing or not marked hit=true:\n%v", tel2.Trace)
	}

	_, tel3, err := e.Select(context.Background(), q, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	if tel3.Trace != nil {
		t.Fatal("untraced call carries a Trace")
	}
}

// A traced batch: every member span shares the batch's trace ID, the
// representative's prep fills carry the plan-group key, and planned
// duplicates appear as dedup=true member spans whose slots replay the
// leader bit-identically.
func TestBatchTraceIDSharedAndDedup(t *testing.T) {
	e := newTestEngine(t, engineFixtures(t))
	queries := []Query{
		{Dataset: "hotels", K: 3, Seed: 5, SampleSize: 100},
		{Dataset: "hotels", K: 5, Seed: 5, SampleSize: 100},
		{Dataset: "hotels", K: 3, Seed: 5, SampleSize: 100}, // dup of 0
	}
	col := obs.NewCollector("")
	out, err := e.SelectBatch(obs.NewCollectorContext(context.Background(), col), queries, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	for i, slot := range out {
		if slot.Err != nil {
			t.Fatalf("member %d: %v", i, slot.Err)
		}
	}
	if !out[2].Result.Cached {
		t.Fatal("planned duplicate not marked Cached")
	}
	for i := range out[0].Result.Indices {
		if out[2].Result.Indices[i] != out[0].Result.Indices[i] {
			t.Fatalf("duplicate diverged from leader: %v vs %v", out[2].Result.Indices, out[0].Result.Indices)
		}
	}
	if out[2].Telemetry.Replay == nil || out[2].Telemetry.Trace != nil {
		t.Fatalf("duplicate telemetry must replay the leader without a trace: %+v", out[2].Telemetry)
	}

	for _, sp := range col.Spans() {
		if sp.TraceID != col.TraceID() {
			t.Fatalf("span %s under trace %s, want %s", sp.Name, sp.TraceID, col.TraceID())
		}
	}
	tree := col.Tree()
	if tree == nil || tree.Span.Name != "engine.batch" {
		t.Fatalf("batch root = %+v, want engine.batch", tree)
	}
	shape := tree.Shape()
	for _, want := range []string{
		"engine.batch members=3",
		"plan groups=1 dedups=1",
		"member index=2 dedup=true",
		"group=", // the representative's prep fills are attributed to the plan group
	} {
		if !strings.Contains(shape, want) {
			t.Fatalf("batch shape missing %q:\n%s", want, shape)
		}
	}
}

// BenchmarkEngineTraceOverhead compares the warm (result-cache hit)
// path with tracing off and on: the off side is the nil-collector fast
// path and must look like the pre-tracing engine.
func BenchmarkEngineTraceOverhead(b *testing.B) {
	e := newTestEngine(b, engineFixtures(b))
	q := Query{Dataset: "hotels", K: 5, Seed: 9, SampleSize: 120}
	if _, _, err := e.Select(context.Background(), q, Exec{}); err != nil {
		b.Fatal(err)
	}
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := e.Select(context.Background(), q, Exec{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := e.Select(TraceContext(context.Background(), ""), q, Exec{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
