// Package serve is the JSON-over-HTTP front end of the fam serving
// engine: request/response types and an http.Handler exposing
//
//	GET  /v1/datasets  — the registered datasets
//	POST /v1/select    — run (or answer from cache) a selection query
//	POST /v1/evaluate  — score an explicit selection set
//	GET  /v1/stats     — engine + HTTP counters
//
// Every request runs under its own request context, so a disconnecting
// client cancels its wait immediately (shared cache fills keep running —
// they warm the cache for the next client). cmd/famserve wires this
// handler into a server with graceful shutdown; examples/server drives
// it in-process.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	fam "github.com/regretlab/fam"
)

// SelectRequest is the body of POST /v1/select. Zero-valued fields take
// the library defaults (algorithm greedy-shrink, ε = σ = 0.1 → N = 691,
// all CPUs).
type SelectRequest struct {
	Dataset        string  `json:"dataset"`
	K              int     `json:"k"`
	Algorithm      string  `json:"algorithm,omitempty"`
	Seed           uint64  `json:"seed,omitempty"`
	Epsilon        float64 `json:"epsilon,omitempty"`
	Sigma          float64 `json:"sigma,omitempty"`
	SampleSize     int     `json:"sample_size,omitempty"`
	Parallelism    int     `json:"parallelism,omitempty"`
	LazyBatch      int     `json:"lazy_batch,omitempty"`
	DisableSkyline bool    `json:"disable_skyline,omitempty"`
}

// options maps the request to SelectOptions (the algorithm name is
// resolved separately because Evaluate ignores it).
func (r *SelectRequest) options() fam.SelectOptions {
	return fam.SelectOptions{
		K:              r.K,
		Seed:           r.Seed,
		Epsilon:        r.Epsilon,
		Sigma:          r.Sigma,
		SampleSize:     r.SampleSize,
		Parallelism:    r.Parallelism,
		LazyBatch:      r.LazyBatch,
		DisableSkyline: r.DisableSkyline,
	}
}

// Metrics is the JSON shape of fam.Metrics.
type Metrics struct {
	ARR             float64   `json:"arr"`
	VRR             float64   `json:"vrr"`
	StdDev          float64   `json:"std_dev"`
	MaxRR           float64   `json:"max_rr"`
	Percentiles     []float64 `json:"percentiles"`
	PercentileLevel []float64 `json:"percentile_levels"`
	DegenerateUsers int       `json:"degenerate_users"`
}

func toMetrics(m fam.Metrics) Metrics {
	return Metrics{
		ARR:             m.ARR,
		VRR:             m.VRR,
		StdDev:          m.StdDev,
		MaxRR:           m.MaxRR,
		Percentiles:     m.Percentiles,
		PercentileLevel: m.PercentileLevel,
		DegenerateUsers: m.DegenerateUsers,
	}
}

// SelectResponse is the body returned by POST /v1/select. ExactARR is
// negative when the algorithm does not compute an exact value.
type SelectResponse struct {
	Dataset      string   `json:"dataset"`
	Algorithm    string   `json:"algorithm"`
	K            int      `json:"k"`
	Indices      []int    `json:"indices"`
	Labels       []string `json:"labels"`
	Metrics      Metrics  `json:"metrics"`
	ExactARR     float64  `json:"exact_arr"`
	SkylineSize  int      `json:"skyline_size"`
	Cached       bool     `json:"cached"`
	PreprocessMS float64  `json:"preprocess_ms"`
	QueryMS      float64  `json:"query_ms"`
}

// EvaluateRequest is the body of POST /v1/evaluate: score Set (dataset
// row indices) under the dataset's distribution.
type EvaluateRequest struct {
	Dataset    string  `json:"dataset"`
	Set        []int   `json:"set"`
	Seed       uint64  `json:"seed,omitempty"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	Sigma      float64 `json:"sigma,omitempty"`
	SampleSize int     `json:"sample_size,omitempty"`
}

// EvaluateResponse is the body returned by POST /v1/evaluate.
type EvaluateResponse struct {
	Dataset string  `json:"dataset"`
	Set     []int   `json:"set"`
	Metrics Metrics `json:"metrics"`
}

// DatasetsResponse is the body returned by GET /v1/datasets.
type DatasetsResponse struct {
	Datasets []fam.DatasetInfo `json:"datasets"`
}

// HTTPStats counts requests by outcome since the handler was built.
type HTTPStats struct {
	Requests    uint64 `json:"requests"`
	ClientError uint64 `json:"client_errors"`
	ServerError uint64 `json:"server_errors"`
}

// StatsResponse is the body returned by GET /v1/stats.
type StatsResponse struct {
	Engine fam.EngineStats `json:"engine"`
	HTTP   HTTPStats       `json:"http"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Handler serves the /v1 API for one Engine.
type Handler struct {
	engine *fam.Engine
	mux    *http.ServeMux

	requests     atomic.Uint64
	clientErrors atomic.Uint64
	serverErrors atomic.Uint64
}

// NewHandler builds the /v1 routes over the engine. The caller keeps
// ownership of the engine's lifecycle.
func NewHandler(e *fam.Engine) *Handler {
	h := &Handler{engine: e, mux: http.NewServeMux()}
	h.mux.HandleFunc("GET /v1/datasets", h.handleDatasets)
	h.mux.HandleFunc("POST /v1/select", h.handleSelect)
	h.mux.HandleFunc("POST /v1/evaluate", h.handleEvaluate)
	h.mux.HandleFunc("GET /v1/stats", h.handleStats)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.requests.Add(1)
	h.mux.ServeHTTP(w, r)
}

func (h *Handler) handleDatasets(w http.ResponseWriter, r *http.Request) {
	h.writeJSON(w, http.StatusOK, DatasetsResponse{Datasets: h.engine.Datasets()})
}

func (h *Handler) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req SelectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		h.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	opts := req.options()
	if req.Algorithm != "" {
		algo, err := fam.ParseAlgorithm(req.Algorithm)
		if err != nil {
			h.writeError(w, http.StatusBadRequest, err)
			return
		}
		opts.Algorithm = algo
	}
	res, err := h.engine.Select(r.Context(), req.Dataset, opts)
	if err != nil {
		h.writeEngineError(w, r, err)
		return
	}
	h.writeJSON(w, http.StatusOK, SelectResponse{
		Dataset:      req.Dataset,
		Algorithm:    opts.Algorithm.String(),
		K:            req.K,
		Indices:      res.Indices,
		Labels:       res.Labels,
		Metrics:      toMetrics(res.Metrics),
		ExactARR:     res.ExactARR,
		SkylineSize:  res.SkylineSize,
		Cached:       res.Cached,
		PreprocessMS: float64(res.Preprocess) / float64(time.Millisecond),
		QueryMS:      float64(res.Query) / float64(time.Millisecond),
	})
}

func (h *Handler) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req EvaluateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		h.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	m, err := h.engine.Evaluate(r.Context(), req.Dataset, req.Set, fam.SelectOptions{
		Seed:       req.Seed,
		Epsilon:    req.Epsilon,
		Sigma:      req.Sigma,
		SampleSize: req.SampleSize,
	})
	if err != nil {
		h.writeEngineError(w, r, err)
		return
	}
	h.writeJSON(w, http.StatusOK, EvaluateResponse{Dataset: req.Dataset, Set: req.Set, Metrics: toMetrics(m)})
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	h.writeJSON(w, http.StatusOK, StatsResponse{
		Engine: h.engine.Stats(),
		HTTP: HTTPStats{
			Requests:    h.requests.Load(),
			ClientError: h.clientErrors.Load(),
			ServerError: h.serverErrors.Load(),
		},
	})
}

// writeEngineError maps engine errors to HTTP statuses: bad requests and
// malformed sets are 400, unknown datasets 404, a closed engine 503, a
// canceled request gets no body (the client is gone), anything else 500.
func (h *Handler) writeEngineError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, fam.ErrBadOptions), errors.Is(err, fam.ErrInvalidSet), errors.Is(err, fam.ErrNilArgument):
		h.writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, fam.ErrUnknownDataset):
		h.writeError(w, http.StatusNotFound, err)
	case errors.Is(err, fam.ErrEngineClosed):
		h.writeError(w, http.StatusServiceUnavailable, err)
	case r.Context().Err() != nil:
		// The client disconnected or timed out; nothing to answer.
		h.clientErrors.Add(1)
	default:
		h.writeError(w, http.StatusInternalServerError, err)
	}
}

func (h *Handler) writeError(w http.ResponseWriter, status int, err error) {
	if status >= 500 {
		h.serverErrors.Add(1)
	} else {
		h.clientErrors.Add(1)
	}
	h.writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

func (h *Handler) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
