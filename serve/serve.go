// Package serve is the JSON-over-HTTP front end of the fam serving
// engine: request/response types and an http.Handler exposing
//
//	GET  /v1/datasets  — the registered datasets
//	POST /v1/datasets  — upload a CSV dataset into the registry
//	POST /v1/select    — run (or answer from cache) one selection query
//	POST /v1/evaluate  — score an explicit selection set
//	GET  /v1/stats     — engine + HTTP counters
//	POST /v2/select    — batched queries: array in, array out, with
//	                     per-member error slots and an explicit
//	                     query/exec split
//	GET  /v2/datasets  — the registered datasets (typed error envelope)
//	POST /v2/datasets  — CSV upload (typed error envelope)
//	GET  /v2/stats     — engine + HTTP counters (typed error envelope)
//	GET  /metrics      — Prometheus text exposition: per-class
//	                     scheduler counters, cache gauges, planner and
//	                     per-endpoint request metrics (see metrics.go)
//
// The v2 surface mirrors the library's Query/Exec API: each member of a
// batch is a purely semantic query, and one exec block sets the
// execution policy for the whole batch — including scheduling: a
// priority class ("low"|"normal"|"high"), a relative deadline in
// milliseconds, and a max_queue admission bound. The same three knobs
// are accepted on any select/evaluate request (v1 included) through the
// X-Fam-Priority, X-Fam-Deadline-Ms, and X-Fam-Max-Queue headers; an
// explicit exec-block value wins over its header. Work shed by
// admission control answers 429 (Too Many Requests); work that ran out
// of deadline mid-flight answers 503. Every /v2 failure body is the
// typed envelope {code, message}; the /v1 endpoints are frozen shims —
// same machinery, the original {error} envelope.
//
// Every request runs under its own request context, so a disconnecting
// client cancels its wait immediately (shared cache fills keep running —
// they warm the cache for the next client). cmd/famserve wires this
// handler into a server with graceful shutdown; examples/server drives
// it in-process.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	fam "github.com/regretlab/fam"
	"github.com/regretlab/fam/internal/load"
	"github.com/regretlab/fam/internal/obs"
)

// QueryRequest is the JSON shape of one semantic query: the v2 batch
// member, and the core of the v1 select/evaluate bodies. Zero-valued
// fields take the library defaults (algorithm greedy-shrink,
// ε = σ = 0.1 → N = 691). A non-empty Set makes the member an
// evaluation query (K and Algorithm are ignored).
type QueryRequest struct {
	Dataset        string        `json:"dataset"`
	K              int           `json:"k,omitempty"`
	Algorithm      fam.Algorithm `json:"algorithm,omitempty"`
	Seed           uint64        `json:"seed,omitempty"`
	Epsilon        float64       `json:"epsilon,omitempty"`
	Sigma          float64       `json:"sigma,omitempty"`
	SampleSize     int           `json:"sample_size,omitempty"`
	DisableSkyline bool          `json:"disable_skyline,omitempty"`
	// Coreset enables the ε-kernel candidate prepass with tolerance
	// CoresetEps (0 = library default). Semantic knobs: they change the
	// answer within the ε bound, not just its latency.
	Coreset    bool    `json:"coreset,omitempty"`
	CoresetEps float64 `json:"coreset_eps,omitempty"`
	// Float32 stores the utility matrix in float32 (half the bytes,
	// ~1e-7 relative drift on metrics).
	Float32 bool  `json:"float32,omitempty"`
	Set     []int `json:"set,omitempty"`
}

// toQuery maps the request member to a fam.Query.
func (r *QueryRequest) toQuery() fam.Query {
	return fam.Query{
		Dataset:        r.Dataset,
		K:              r.K,
		Algorithm:      r.Algorithm,
		Seed:           r.Seed,
		Epsilon:        r.Epsilon,
		Sigma:          r.Sigma,
		SampleSize:     r.SampleSize,
		DisableSkyline: r.DisableSkyline,
		Coreset:        r.Coreset,
		CoresetEps:     r.CoresetEps,
		Float32:        r.Float32,
		ExplicitSet:    r.Set,
	}
}

// ExecRequest is the JSON shape of the execution policy: it never
// changes an answer, only how fast (and whether, under overload) it is
// computed.
type ExecRequest struct {
	Parallelism int `json:"parallelism,omitempty"`
	LazyBatch   int `json:"lazy_batch,omitempty"`
	// Priority is the scheduling class: "low", "normal" (default), or
	// "high". Under load the pool grants helpers to higher classes
	// first.
	Priority string `json:"priority,omitempty"`
	// DeadlineMS is the relative completion deadline in milliseconds
	// from request arrival, clamped to one year (so an absurdly large
	// value means "generous deadline", never an overflow into the past).
	// A negative value is already expired and is shed (429). Zero value
	// (field absent) means no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// MaxQueue sheds the request (429) when more helper requests than
	// this are already queued on the engine's pool. Zero = no bound.
	MaxQueue int `json:"max_queue,omitempty"`
	// Trace requests each member's finished span tree in its response
	// telemetry (v2 surface only). A request not already traced through
	// the X-Fam-Trace / traceparent headers is armed with a fresh trace
	// ID, echoed back in X-Fam-Trace.
	Trace bool `json:"trace,omitempty"`
}

// toExec resolves the wire exec policy at the given arrival time.
func (r ExecRequest) toExec(now time.Time) (fam.Exec, error) {
	exec := fam.Exec{Parallelism: r.Parallelism, LazyBatch: r.LazyBatch, MaxQueue: r.MaxQueue}
	if r.Priority != "" {
		p, err := fam.ParsePriority(r.Priority)
		if err != nil {
			return fam.Exec{}, err
		}
		exec.Priority = p
	}
	if r.DeadlineMS != 0 {
		ms := r.DeadlineMS
		switch {
		case ms > maxDeadlineMS:
			ms = maxDeadlineMS
		case ms < -maxDeadlineMS:
			ms = -maxDeadlineMS // still expired — sheds, as any negative value must
		}
		exec.Deadline = now.Add(time.Duration(ms) * time.Millisecond)
	}
	return exec, nil
}

// maxDeadlineMS clamps |deadline_ms| at one year: far below the
// ~292-year int64-nanosecond horizon, so the millisecond→Duration
// conversion can never overflow — a huge positive value stays a
// generous future deadline, a huge negative one stays expired.
const maxDeadlineMS = int64(365 * 24 * time.Hour / time.Millisecond)

// Scheduling headers accepted on every select/evaluate request; the
// exec block's explicit values win over them.
const (
	HeaderPriority   = "X-Fam-Priority"
	HeaderDeadlineMS = "X-Fam-Deadline-Ms"
	HeaderMaxQueue   = "X-Fam-Max-Queue"
)

// HeaderInstanceKey is echoed on successful query responses with the
// normalized preprocessing-instance key(s) the request resolved to
// (comma-separated on batch responses, unique keys only). A cluster
// router uses it to learn which replica holds which warm instance
// instead of guessing keys from raw request bodies.
const HeaderInstanceKey = "X-Fam-Instance-Key"

// setInstanceKeyHeader echoes the unique instance keys of the served
// queries, in first-appearance order, on HeaderInstanceKey. Queries
// that don't resolve (unknown dataset — the request failed anyway, or
// a racing delete) contribute nothing.
func (h *Handler) setInstanceKeyHeader(w http.ResponseWriter, queries ...fam.Query) {
	var keys []string
	seen := make(map[string]bool, len(queries))
	for _, q := range queries {
		key := h.engine.InstanceKey(q)
		if key == "" || seen[key] {
			continue
		}
		seen[key] = true
		keys = append(keys, key)
	}
	if len(keys) > 0 {
		w.Header().Set(HeaderInstanceKey, strings.Join(keys, ","))
	}
}

// withHeaders folds the scheduling headers into the wire exec policy:
// a header applies only where the body left the knob unset.
func (r ExecRequest) withHeaders(req *http.Request) (ExecRequest, error) {
	if v := req.Header.Get(HeaderPriority); v != "" && r.Priority == "" {
		r.Priority = v
	}
	if v := req.Header.Get(HeaderDeadlineMS); v != "" && r.DeadlineMS == 0 {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return r, fmt.Errorf("bad %s header %q: %w", HeaderDeadlineMS, v, err)
		}
		r.DeadlineMS = ms
	}
	if v := req.Header.Get(HeaderMaxQueue); v != "" && r.MaxQueue == 0 {
		mq, err := strconv.Atoi(v)
		if err != nil {
			return r, fmt.Errorf("bad %s header %q: %w", HeaderMaxQueue, v, err)
		}
		r.MaxQueue = mq
	}
	return r, nil
}

// resolveExec is the shared exec-policy pipeline of every query
// endpoint: headers folded in, the accepted request recorded to the
// trace (when configured), the handler's default admission bound
// applied, the wire shape resolved against the request arrival time
// read from the handler's clock.
func (h *Handler) resolveExec(req *http.Request, body ExecRequest, members ...QueryRequest) (fam.Exec, error) {
	body, err := body.withHeaders(req)
	if err != nil {
		return fam.Exec{}, err
	}
	h.recordTrace(body, members)
	if body.MaxQueue == 0 {
		body.MaxQueue = h.cfg.MaxQueue
	}
	return body.toExec(h.clock())
}

// recordTrace appends one trace line per accepted query member: the
// semantic request plus the client's post-header-fold scheduling
// knobs, timestamped relative to handler construction.
func (h *Handler) recordTrace(exec ExecRequest, members []QueryRequest) {
	if h.trace == nil || len(members) == 0 {
		return
	}
	tms := float64(h.clock().Sub(h.start)) / 1e6
	for _, m := range members {
		req := load.Request{
			Dataset:        m.Dataset,
			K:              m.K,
			Seed:           m.Seed,
			Epsilon:        m.Epsilon,
			Sigma:          m.Sigma,
			SampleSize:     m.SampleSize,
			DisableSkyline: m.DisableSkyline,
			Set:            m.Set,
			Parallelism:    exec.Parallelism,
			LazyBatch:      exec.LazyBatch,
			Priority:       exec.Priority,
			DeadlineMS:     exec.DeadlineMS,
			MaxQueue:       exec.MaxQueue,
		}
		if m.Algorithm != fam.GreedyShrink {
			// The zero algorithm is the default either way; explicit
			// non-defaults are recorded by name so replay re-parses them.
			req.Algorithm = m.Algorithm.String()
		}
		_ = h.trace.Record(load.TraceEntry{TMS: tms, Request: req})
	}
}

// BatchSelectRequest is the body of POST /v2/select.
type BatchSelectRequest struct {
	Queries []QueryRequest `json:"queries"`
	Exec    ExecRequest    `json:"exec"`
}

// BatchMemberResponse is one slot of a v2 answer: the SelectResponse
// fields on success, or an error string (with the HTTP status and
// typed code the same failure would have had as a standalone request)
// on a per-member failure.
type BatchMemberResponse struct {
	*SelectResponse
	Error  string `json:"error,omitempty"`
	Status int    `json:"status,omitempty"`
	Code   string `json:"code,omitempty"`
}

// BatchSelectResponse is the body returned by POST /v2/select: one slot
// per request member, in order.
type BatchSelectResponse struct {
	Results []BatchMemberResponse `json:"results"`
}

// SelectRequest is the body of POST /v1/select: a single semantic query
// with the execution knobs inlined (the pre-split v1 shape).
type SelectRequest struct {
	Dataset        string  `json:"dataset"`
	K              int     `json:"k"`
	Algorithm      string  `json:"algorithm,omitempty"`
	Seed           uint64  `json:"seed,omitempty"`
	Epsilon        float64 `json:"epsilon,omitempty"`
	Sigma          float64 `json:"sigma,omitempty"`
	SampleSize     int     `json:"sample_size,omitempty"`
	Parallelism    int     `json:"parallelism,omitempty"`
	LazyBatch      int     `json:"lazy_batch,omitempty"`
	DisableSkyline bool    `json:"disable_skyline,omitempty"`
}

// Metrics is the JSON shape of fam.Metrics.
type Metrics struct {
	ARR             float64   `json:"arr"`
	VRR             float64   `json:"vrr"`
	StdDev          float64   `json:"std_dev"`
	MaxRR           float64   `json:"max_rr"`
	Percentiles     []float64 `json:"percentiles"`
	PercentileLevel []float64 `json:"percentile_levels"`
	DegenerateUsers int       `json:"degenerate_users"`
}

func toMetrics(m fam.Metrics) Metrics {
	return Metrics{
		ARR:             m.ARR,
		VRR:             m.VRR,
		StdDev:          m.StdDev,
		MaxRR:           m.MaxRR,
		Percentiles:     m.Percentiles,
		PercentileLevel: m.PercentileLevel,
		DegenerateUsers: m.DegenerateUsers,
	}
}

// TelemetryResponse is the JSON shape of fam.Telemetry: execution
// detail that varies with the exec policy. The top-level fields always
// describe this request's own execution — a result-cache hit reports
// its own near-zero timings, with the computing execution's telemetry
// under Replayed.
type TelemetryResponse struct {
	PreprocessMS     float64 `json:"preprocess_ms"`
	QueryMS          float64 `json:"query_ms"`
	QueueWaitMS      float64 `json:"queue_wait_ms,omitempty"`
	Workers          int     `json:"workers,omitempty"`
	ParallelBatches  int     `json:"parallel_batches,omitempty"`
	SerialBatches    int     `json:"serial_batches,omitempty"`
	Iterations       int     `json:"iterations,omitempty"`
	Evaluations      int     `json:"evaluations,omitempty"`
	EvalSkipped      int     `json:"eval_skipped,omitempty"`
	LazyBatch        int     `json:"lazy_batch,omitempty"`
	SpeculativeEvals int     `json:"speculative_evals,omitempty"`
	SpeculativeHits  int     `json:"speculative_hits,omitempty"`
	SpeculativeWaste int     `json:"speculative_waste,omitempty"`
	// Replayed is the telemetry of the execution that computed a
	// replayed answer: the result-cache filler, or the batch-dedup
	// leader. Present exactly when the answer was a replay.
	Replayed *TelemetryResponse `json:"replayed,omitempty"`
	// Trace is the member's finished span tree, present when the
	// request set exec.trace.
	Trace *fam.TraceSpan `json:"trace,omitempty"`
}

func toTelemetry(t *fam.Telemetry, withTrace bool) *TelemetryResponse {
	if t == nil {
		return nil
	}
	out := &TelemetryResponse{
		PreprocessMS:     float64(t.Preprocess) / float64(time.Millisecond),
		QueryMS:          float64(t.Query) / float64(time.Millisecond),
		QueueWaitMS:      float64(t.QueueWait) / float64(time.Millisecond),
		Workers:          t.Stats.Workers,
		ParallelBatches:  t.Stats.ParallelBatches,
		SerialBatches:    t.Stats.SerialBatches,
		Iterations:       t.Stats.Iterations,
		Evaluations:      t.Stats.Evaluations,
		EvalSkipped:      t.Stats.EvalSkipped,
		LazyBatch:        t.Stats.LazyBatch,
		SpeculativeEvals: t.Stats.SpeculativeEvals,
		SpeculativeHits:  t.Stats.SpeculativeHits,
		SpeculativeWaste: t.Stats.SpeculativeWaste,
	}
	if t.Replay != nil {
		out.Replayed = toTelemetry(t.Replay, false)
	}
	if withTrace {
		out.Trace = t.Trace
	}
	return out
}

// SelectResponse is the body returned by POST /v1/select and the success
// shape of a v2 member. ExactARR is negative when the algorithm does not
// compute an exact value. Telemetry is populated on the v2 surface only.
type SelectResponse struct {
	Dataset      string             `json:"dataset"`
	Algorithm    string             `json:"algorithm"`
	K            int                `json:"k"`
	Indices      []int              `json:"indices"`
	Labels       []string           `json:"labels"`
	Metrics      Metrics            `json:"metrics"`
	ExactARR     float64            `json:"exact_arr"`
	SkylineSize  int                `json:"skyline_size"`
	// CoresetSize is the candidate count after the ε-kernel prepass;
	// omitted when the query did not enable Coreset.
	CoresetSize *int `json:"coreset_size,omitempty"`
	Cached      bool `json:"cached"`
	PreprocessMS float64            `json:"preprocess_ms"`
	QueryMS      float64            `json:"query_ms"`
	Telemetry    *TelemetryResponse `json:"telemetry,omitempty"`
}

// EvaluateRequest is the body of POST /v1/evaluate: score Set (dataset
// row indices) under the dataset's distribution.
type EvaluateRequest struct {
	Dataset    string  `json:"dataset"`
	Set        []int   `json:"set"`
	Seed       uint64  `json:"seed,omitempty"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	Sigma      float64 `json:"sigma,omitempty"`
	SampleSize int     `json:"sample_size,omitempty"`
}

// EvaluateResponse is the body returned by POST /v1/evaluate.
type EvaluateResponse struct {
	Dataset string  `json:"dataset"`
	Set     []int   `json:"set"`
	Metrics Metrics `json:"metrics"`
}

// DatasetsResponse is the body returned by GET /v1/datasets.
type DatasetsResponse struct {
	Datasets []fam.DatasetInfo `json:"datasets"`
}

// UploadResponse is the body returned by POST /v1/datasets on success.
type UploadResponse struct {
	Dataset fam.DatasetInfo `json:"dataset"`
}

// HTTPStats counts requests by outcome since the handler was built.
type HTTPStats struct {
	Requests    uint64 `json:"requests"`
	ClientError uint64 `json:"client_errors"`
	ServerError uint64 `json:"server_errors"`
	// Uploads counts datasets accepted through POST /v1/datasets.
	Uploads uint64 `json:"uploads"`
}

// StatsResponse is the body returned by GET /v1/stats.
type StatsResponse struct {
	Engine fam.EngineStats `json:"engine"`
	HTTP   HTTPStats       `json:"http"`
}

// ErrorResponse is the body of every non-2xx /v1 answer (the frozen
// shim envelope).
type ErrorResponse struct {
	Error string `json:"error"`
}

// ErrorV2 is the typed error envelope of every non-2xx /v2 answer: a
// stable machine-matchable code plus the human-readable message.
// RequestID identifies the failed request in the server's structured
// request log.
type ErrorV2 struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// The stable error codes of the v2 envelope.
const (
	CodeBadRequest      = "bad_request"
	CodeNotFound        = "not_found"
	CodeConflict        = "conflict"
	CodeForbidden       = "forbidden"
	CodePayloadTooLarge = "payload_too_large"
	CodeShed            = "shed"
	CodeUnavailable     = "unavailable"
	CodeInternal        = "internal"
)

// errorCode maps an HTTP status to its v2 envelope code.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeConflict
	case http.StatusForbidden:
		return CodeForbidden
	case http.StatusRequestEntityTooLarge:
		return CodePayloadTooLarge
	case http.StatusTooManyRequests:
		return CodeShed
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	default:
		return CodeInternal
	}
}

// HandlerConfig tunes the HTTP front end. The zero value is
// serviceable.
type HandlerConfig struct {
	// MaxUploadBytes caps the CSV body of POST /v1/datasets
	// (0 = DefaultMaxUploadBytes, negative = uploads disabled).
	MaxUploadBytes int64
	// MaxBatchQueries caps the member count of one POST /v2/select
	// (0 = DefaultMaxBatchQueries).
	MaxBatchQueries int
	// MaxQueue is the server-side admission bound applied to every
	// select/evaluate request that does not set its own max_queue (body
	// or header): a request arriving while more helper requests than
	// this are queued on the engine's pool is shed with 429. Zero
	// disables the server-side bound.
	MaxQueue int
	// Clock supplies the handler's notion of "now" — the arrival time
	// relative deadlines resolve against, and the timebase of trace
	// timestamps. Nil uses time.Now; tests inject a fixed clock to pin
	// deadline resolution.
	Clock func() time.Time
	// Trace, when set, records every accepted query request (v1
	// select/evaluate and each v2 batch member) as one JSONL
	// internal/load.TraceEntry line: the request's offset from handler
	// construction in ms, the semantic query, and the client's
	// scheduling knobs after header folding (the server-side MaxQueue
	// default is handler config, not client intent, and is not
	// recorded). famload replays these traces. The writer is serialized
	// internally; any io.Writer works.
	Trace io.Writer
	// TraceLog, when set, receives one JSON line per sinked span tree:
	// sampled query requests (every TraceSample-th) and every slow
	// query. The writer is serialized internally.
	TraceLog io.Writer
	// TraceSample sinks every Nth query request's span tree to
	// TraceLog (0 = sink only slow queries).
	TraceSample int
	// SlowQuery is the latency threshold above which a query request
	// counts as slow and its span tree is always sinked to TraceLog.
	// When set, every query request is traced, so the tree exists if
	// the request turns out slow. Zero disables slow-query capture.
	SlowQuery time.Duration
	// Log, when set, receives one structured line per served request:
	// request_id, trace_id (empty when untraced), endpoint, status,
	// dur_ms.
	Log *slog.Logger
}

// Default limits of HandlerConfig's zero values.
const (
	DefaultMaxUploadBytes  = 32 << 20 // 32 MiB of CSV
	DefaultMaxBatchQueries = 256
)

// Handler serves the /v1 and /v2 API for one Engine.
type Handler struct {
	engine *fam.Engine
	cfg    HandlerConfig
	mux    *http.ServeMux

	// clock is cfg.Clock or time.Now; start anchors trace timestamps.
	clock func() time.Time
	start time.Time
	trace *load.TraceWriter

	// runID prefixes request IDs so they stay unique across restarts in
	// aggregated logs; reqSeq numbers the requests of this run.
	runID    string
	reqSeq   atomic.Uint64
	traceLog *traceSink
	log      *slog.Logger

	requests     atomic.Uint64
	clientErrors atomic.Uint64
	serverErrors atomic.Uint64
	uploads      atomic.Uint64
	sampleSeq    atomic.Uint64
	traceSpans   atomic.Uint64
	slowQueries  atomic.Uint64

	// metrics backs GET /metrics: per-endpoint request counters and
	// latency histograms (see metrics.go for the full series list).
	metrics *httpMetrics

	// shed backs /healthz's windowed shed rate: per-second buckets of
	// query requests and their 429 answers (see health.go).
	shed shedWindow
}

// NewHandler builds the routes over the engine with default limits. The
// caller keeps ownership of the engine's lifecycle.
func NewHandler(e *fam.Engine) *Handler {
	return NewHandlerConfig(e, HandlerConfig{})
}

// NewHandlerConfig builds the routes over the engine with explicit
// limits.
func NewHandlerConfig(e *fam.Engine, cfg HandlerConfig) *Handler {
	if cfg.MaxUploadBytes == 0 {
		cfg.MaxUploadBytes = DefaultMaxUploadBytes
	}
	if cfg.MaxBatchQueries <= 0 {
		cfg.MaxBatchQueries = DefaultMaxBatchQueries
	}
	h := &Handler{engine: e, cfg: cfg, mux: http.NewServeMux(), metrics: newHTTPMetrics()}
	h.clock = cfg.Clock
	if h.clock == nil {
		h.clock = time.Now
	}
	h.start = h.clock()
	if cfg.Trace != nil {
		h.trace = load.NewTraceWriter(cfg.Trace)
	}
	h.runID = obs.NewTraceID()[:8]
	if cfg.TraceLog != nil {
		h.traceLog = &traceSink{w: cfg.TraceLog}
	}
	h.log = cfg.Log
	h.mux.HandleFunc("GET /v1/datasets", h.handleDatasets)
	h.mux.HandleFunc("POST /v1/datasets", func(w http.ResponseWriter, r *http.Request) { h.handleUpload(v1Errors, w, r) })
	h.mux.HandleFunc("POST /v1/select", h.handleSelect)
	h.mux.HandleFunc("POST /v1/evaluate", h.handleEvaluate)
	h.mux.HandleFunc("GET /v1/stats", h.handleStats)
	h.mux.HandleFunc("POST /v2/select", h.handleBatchSelect)
	h.mux.HandleFunc("GET /v2/datasets", h.handleDatasets)
	h.mux.HandleFunc("POST /v2/datasets", func(w http.ResponseWriter, r *http.Request) { h.handleUpload(v2Errors, w, r) })
	h.mux.HandleFunc("GET /v2/stats", h.handleStats)
	h.mux.HandleFunc("GET /metrics", h.handleMetrics)
	h.mux.HandleFunc("GET /healthz", h.handleHealthz)
	return h
}

// errorDialect selects the wire shape of failure bodies: the frozen v1
// {error} envelope or the typed v2 {code, message} envelope.
type errorDialect int

const (
	v1Errors errorDialect = iota
	v2Errors
)

// ServeHTTP implements http.Handler. It is the observability
// middleware of every route: each request gets an ID, the /metrics
// per-endpoint accounting under its matched route pattern, and — when
// the client sent a tracing header, the request was sampled, or
// slow-query capture is on — a span-tree collector whose root
// http.request span encloses the whole request. Traced responses echo
// X-Fam-Trace and traceparent; sampled and slow trees are sinked to
// the JSONL trace log; every request writes one structured log line.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.requests.Add(1)
	_, pattern := h.mux.Handler(r)
	if pattern == "" {
		pattern = "unmatched"
	}
	reqID := fmt.Sprintf("%s-%06d", h.runID, h.reqSeq.Add(1))
	ctx := withRequestID(r.Context(), reqID)

	traceID, remoteSpan, clientArmed := traceHeaders(r)
	query := isQueryPattern(pattern)
	sampled := false
	if query && h.traceLog != nil && h.cfg.TraceSample > 0 {
		sampled = h.sampleSeq.Add(1)%uint64(h.cfg.TraceSample) == 0
	}
	var col *obs.Collector
	var root *obs.Span
	if clientArmed || sampled || (query && h.cfg.SlowQuery > 0) {
		col = obs.NewCollector(traceID)
		col.SetRemoteParent(remoteSpan)
		root = col.StartSpan("http.request")
		root.SetAttr("endpoint", pattern)
		ctx = obs.NewContext(ctx, root)
		// Identity headers go out before the handler writes the body,
		// so the client learns its trace ID even on failures.
		w.Header().Set(HeaderTrace, col.TraceID())
		w.Header().Set(HeaderTraceparent, obs.FormatTraceparent(col.TraceID(), root.SpanID))
	}

	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	start := h.clock()
	h.mux.ServeHTTP(rec, r.WithContext(ctx))
	dur := h.clock().Sub(start)
	h.metrics.record(pattern, rec.status, dur.Seconds())
	if query {
		h.shed.note(h.clock(), rec.status == http.StatusTooManyRequests)
	}

	if root != nil {
		root.SetAttrInt("status", rec.status)
		root.End()
		h.traceSpans.Add(uint64(col.SpanCount()))
		slow := query && h.cfg.SlowQuery > 0 && dur >= h.cfg.SlowQuery
		if slow {
			h.slowQueries.Add(1)
		}
		if h.traceLog != nil && (sampled || slow) {
			h.traceLog.write(traceLogEntry{
				Time:      start,
				TraceID:   col.TraceID(),
				RequestID: reqID,
				Endpoint:  pattern,
				Status:    rec.status,
				DurMS:     float64(dur) / 1e6,
				Slow:      slow,
				Sampled:   sampled,
				Spans:     col.Tree().JSON(),
			})
		}
	}
	if h.log != nil {
		h.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("request_id", reqID),
			slog.String("trace_id", col.TraceID()),
			slog.String("endpoint", pattern),
			slog.Int("status", rec.status),
			slog.Float64("dur_ms", float64(dur)/1e6))
	}
}

func (h *Handler) handleDatasets(w http.ResponseWriter, r *http.Request) {
	h.writeJSON(w, http.StatusOK, DatasetsResponse{Datasets: h.engine.Datasets()})
}

// memberResponse renders one answered member — the shared shape of a
// v2 slot and a v1 select body. The top-level PreprocessMS/QueryMS
// keep the frozen v1 semantics — a cache hit carries the timings of
// the computation it replays — so they read through Replay; the
// telemetry block distinguishes the hit's own execution from the
// replayed one.
func memberResponse(member QueryRequest, res *fam.Result, tel *fam.Telemetry, withTrace bool) *SelectResponse {
	resp := &SelectResponse{
		Dataset:     member.Dataset,
		Algorithm:   member.Algorithm.String(),
		K:           member.K,
		Indices:     res.Indices,
		Labels:      res.Labels,
		Metrics:     toMetrics(res.Metrics),
		ExactARR:    res.ExactARR,
		SkylineSize: res.SkylineSize,
		Cached:      res.Cached,
		Telemetry:   toTelemetry(tel, withTrace),
	}
	if res.CoresetSize >= 0 {
		cs := res.CoresetSize
		resp.CoresetSize = &cs
	}
	if tel != nil {
		src := tel
		if tel.Replay != nil {
			src = tel.Replay
		}
		resp.PreprocessMS = float64(src.Preprocess) / float64(time.Millisecond)
		resp.QueryMS = float64(src.Query) / float64(time.Millisecond)
	}
	return resp
}

// runBatch executes a v2 member array against the engine's batch
// planner. Member successes are rendered as SelectResponses, member
// failures keep their slot with the error, the status, and the typed
// code the same failure would have had standalone.
func (h *Handler) runBatch(r *http.Request, members []QueryRequest, exec fam.Exec, withTrace bool) ([]BatchMemberResponse, error) {
	queries := make([]fam.Query, len(members))
	for i := range members {
		queries[i] = members[i].toQuery()
	}
	slots, err := h.engine.SelectBatch(r.Context(), queries, exec)
	if err != nil {
		return nil, err
	}
	out := make([]BatchMemberResponse, len(slots))
	for i, slot := range slots {
		if slot.Err != nil {
			status := statusOf(slot.Err)
			out[i] = BatchMemberResponse{Error: slot.Err.Error(), Status: status, Code: errorCode(status)}
			continue
		}
		out[i] = BatchMemberResponse{SelectResponse: memberResponse(members[i], slot.Result, slot.Telemetry, withTrace)}
	}
	return out, nil
}

func (h *Handler) handleBatchSelect(w http.ResponseWriter, r *http.Request) {
	var req BatchSelectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		h.writeErrorDialect(v2Errors, w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		h.writeErrorDialect(v2Errors, w, r, http.StatusBadRequest, errors.New("empty batch: queries must be non-empty"))
		return
	}
	if len(req.Queries) > h.cfg.MaxBatchQueries {
		h.writeErrorDialect(v2Errors, w, r, http.StatusBadRequest,
			fmt.Errorf("batch of %d queries exceeds the limit of %d", len(req.Queries), h.cfg.MaxBatchQueries))
		return
	}
	exec, err := h.resolveExec(r, req.Exec, req.Queries...)
	if err != nil {
		h.writeErrorDialect(v2Errors, w, r, http.StatusBadRequest, err)
		return
	}
	if req.Exec.Trace && !obs.Active(r.Context()) {
		// The body asked for a trace but no header (or server knob)
		// armed one: arm a request-local collector so the engine
		// subtree exists, and tell the client its trace ID.
		col := obs.NewCollector("")
		w.Header().Set(HeaderTrace, col.TraceID())
		r = r.WithContext(obs.NewCollectorContext(r.Context(), col))
	}
	results, err := h.runBatch(r, req.Queries, exec, req.Exec.Trace)
	if err != nil {
		h.writeEngineErrorDialect(v2Errors, w, r, err)
		return
	}
	queries := make([]fam.Query, len(req.Queries))
	for i := range req.Queries {
		queries[i] = req.Queries[i].toQuery()
	}
	h.setInstanceKeyHeader(w, queries...)
	h.writeJSON(w, http.StatusOK, BatchSelectResponse{Results: results})
}

// handleSelect is the v1 shim: the combined request is split into its
// semantic and execution halves (the v2 member + exec types) and served
// through the engine's Select path — the same result cache the batch
// layer fills, without counting as a batch in the stats.
func (h *Handler) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req SelectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		h.writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	member := QueryRequest{
		Dataset:        req.Dataset,
		K:              req.K,
		Seed:           req.Seed,
		Epsilon:        req.Epsilon,
		Sigma:          req.Sigma,
		SampleSize:     req.SampleSize,
		DisableSkyline: req.DisableSkyline,
	}
	if req.Algorithm != "" {
		algo, err := fam.ParseAlgorithm(req.Algorithm)
		if err != nil {
			h.writeError(w, r, http.StatusBadRequest, err)
			return
		}
		member.Algorithm = algo
	}
	exec, err := h.resolveExec(r, ExecRequest{Parallelism: req.Parallelism, LazyBatch: req.LazyBatch}, member)
	if err != nil {
		h.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	res, tel, err := h.engine.Select(r.Context(), member.toQuery(), exec)
	if err != nil {
		h.writeEngineError(w, r, err)
		return
	}
	resp := memberResponse(member, res, tel, false)
	resp.Telemetry = nil // telemetry detail is a v2-surface feature
	h.setInstanceKeyHeader(w, member.toQuery())
	h.writeJSON(w, http.StatusOK, resp)
}

// handleEvaluate is the v1 shim: the request becomes an explicit-set
// Query through the engine's Evaluate path, rendered in the v1 shape.
func (h *Handler) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req EvaluateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		h.writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	member := QueryRequest{
		Dataset:    req.Dataset,
		Seed:       req.Seed,
		Epsilon:    req.Epsilon,
		Sigma:      req.Sigma,
		SampleSize: req.SampleSize,
		Set:        req.Set,
	}
	q := member.toQuery()
	if q.ExplicitSet == nil {
		// A missing set must fail set validation, not K validation.
		q.ExplicitSet = []int{}
	}
	exec, err := h.resolveExec(r, ExecRequest{}, member)
	if err != nil {
		h.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	m, err := h.engine.Evaluate(r.Context(), q, exec)
	if err != nil {
		h.writeEngineError(w, r, err)
		return
	}
	h.setInstanceKeyHeader(w, q)
	h.writeJSON(w, http.StatusOK, EvaluateResponse{
		Dataset: req.Dataset,
		Set:     req.Set,
		Metrics: toMetrics(m),
	})
}

// handleUpload ingests a CSV dataset body (header row; optional leading
// "label" column) into the engine's registry under ?name=, with the
// distribution chosen by ?dist= (uniform linear weights by default,
// "ces:<rho>" for concave CES utilities).
func (h *Handler) handleUpload(d errorDialect, w http.ResponseWriter, r *http.Request) {
	if h.cfg.MaxUploadBytes < 0 {
		h.writeErrorDialect(d, w, r, http.StatusForbidden, errors.New("dataset uploads are disabled"))
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		h.writeErrorDialect(d, w, r, http.StatusBadRequest, errors.New("missing required query parameter: name"))
		return
	}
	body := http.MaxBytesReader(w, r.Body, h.cfg.MaxUploadBytes)
	ds, err := fam.LoadCSV(body, name)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			h.writeErrorDialect(d, w, r, http.StatusRequestEntityTooLarge,
				fmt.Errorf("dataset exceeds the %d-byte upload cap", h.cfg.MaxUploadBytes))
			return
		}
		h.writeErrorDialect(d, w, r, http.StatusBadRequest, fmt.Errorf("parsing CSV: %w", err))
		return
	}
	dist, err := uploadDistribution(r.URL.Query().Get("dist"), ds.Dim())
	if err != nil {
		h.writeErrorDialect(d, w, r, http.StatusBadRequest, err)
		return
	}
	if err := h.engine.Register(name, ds, dist); err != nil {
		if errors.Is(err, fam.ErrDuplicateDataset) {
			h.writeErrorDialect(d, w, r, http.StatusConflict, err)
			return
		}
		h.writeEngineErrorDialect(d, w, r, err)
		return
	}
	h.uploads.Add(1)
	h.writeJSON(w, http.StatusCreated, UploadResponse{Dataset: fam.DatasetInfo{
		Name:         name,
		N:            ds.N(),
		Dim:          ds.Dim(),
		Distribution: dist.Name(),
	}})
}

// uploadDistribution resolves the ?dist= parameter of an upload:
// "" or "linear" (simplex-uniform linear), "box" (box-uniform linear),
// or "ces:<rho>".
func uploadDistribution(spec string, dim int) (fam.Distribution, error) {
	switch {
	case spec == "" || spec == "linear":
		return fam.UniformLinear(dim)
	case spec == "box":
		return fam.UniformBoxLinear(dim)
	case len(spec) > 4 && spec[:4] == "ces:":
		var rho float64
		if _, err := fmt.Sscanf(spec[4:], "%g", &rho); err != nil {
			return nil, fmt.Errorf("bad ces rho %q: %w", spec[4:], err)
		}
		return fam.CESUniform(dim, rho)
	default:
		return nil, fmt.Errorf("unknown distribution spec %q (want linear|box|ces:<rho>)", spec)
	}
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	h.writeJSON(w, http.StatusOK, StatsResponse{
		Engine: h.engine.Stats(),
		HTTP: HTTPStats{
			Requests:    h.requests.Load(),
			ClientError: h.clientErrors.Load(),
			ServerError: h.serverErrors.Load(),
			Uploads:     h.uploads.Load(),
		},
	})
}

// statusOf maps an engine error to its HTTP status: bad requests and
// malformed sets are 400, unknown datasets 404, admission-shed work
// 429 (back off and retry), a deadline that expired mid-flight or a
// closed engine 503, anything else 500.
func statusOf(err error) int {
	switch {
	case errors.Is(err, fam.ErrBadOptions), errors.Is(err, fam.ErrInvalidSet), errors.Is(err, fam.ErrNilArgument):
		return http.StatusBadRequest
	case errors.Is(err, fam.ErrUnknownDataset):
		return http.StatusNotFound
	case errors.Is(err, fam.ErrShed):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.Is(err, fam.ErrEngineClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeEngineError maps whole-call engine errors to HTTP statuses in
// the v1 dialect; a canceled request gets no body (the client is gone).
func (h *Handler) writeEngineError(w http.ResponseWriter, r *http.Request, err error) {
	h.writeEngineErrorDialect(v1Errors, w, r, err)
}

func (h *Handler) writeEngineErrorDialect(d errorDialect, w http.ResponseWriter, r *http.Request, err error) {
	if r.Context().Err() != nil && !errors.Is(r.Context().Err(), context.DeadlineExceeded) {
		h.clientErrors.Add(1)
		return
	}
	h.writeErrorDialect(d, w, r, statusOf(err), err)
}

func (h *Handler) writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	h.writeErrorDialect(v1Errors, w, r, status, err)
}

// writeErrorDialect renders a failure in the endpoint's envelope: the
// frozen v1 {error} shape or the typed v2 {code, message, request_id}
// shape.
func (h *Handler) writeErrorDialect(d errorDialect, w http.ResponseWriter, r *http.Request, status int, err error) {
	if status >= 500 {
		h.serverErrors.Add(1)
	} else {
		h.clientErrors.Add(1)
	}
	if d == v2Errors {
		h.writeJSON(w, status, ErrorV2{
			Code:      errorCode(status),
			Message:   err.Error(),
			RequestID: requestIDFrom(r.Context()),
		})
		return
	}
	h.writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

func (h *Handler) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
