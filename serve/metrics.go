package serve

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"

	fam "github.com/regretlab/fam"
)

// BuildVersion labels fam_build_info. Override at link time:
//
//	go build -ldflags "-X github.com/regretlab/fam/serve.BuildVersion=v1.2.3"
var BuildVersion = "dev"

// This file implements GET /metrics: the Prometheus text exposition
// (version 0.0.4) of the engine's scheduling, cache, and planner
// counters plus the handler's per-endpoint request accounting — with
// zero external dependencies. The per-class scheduling series are the
// observable proof of the deficit-bounded starvation fix: under any
// sustained priority mix, every class's fam_sched_granted_total keeps
// advancing.
//
// Exported series (labels in parentheses):
//
//	fam_sched_granted_total            (class)  counter
//	fam_sched_shed_total               (class)  counter
//	fam_sched_stale_total              (class)  counter
//	fam_sched_queue_wait_seconds_total (class)  counter
//	fam_sched_queue_depth              (class)  gauge
//	fam_sched_deficit_grants_total              counter
//	fam_sched_policy_info              (policy) gauge (constant 1)
//	fam_cache_hits_total               (cache)  counter  cache = "prep"|"result"
//	fam_cache_misses_total             (cache)  counter
//	fam_cache_coalesced_total          (cache)  counter
//	fam_cache_evictions_total          (cache)  counter
//	fam_cache_expired_total            (cache)  counter
//	fam_cache_errors_total             (cache)  counter
//	fam_cache_entries                  (cache)  gauge
//	fam_cache_bytes                    (cache)  gauge
//	fam_cache_max_bytes                (cache)  gauge
//	fam_engine_selects_total                    counter
//	fam_engine_evaluates_total                  counter
//	fam_engine_batches_total                    counter
//	fam_engine_batch_queries_total              counter
//	fam_engine_shed_total                       counter
//	fam_engine_planned_dedups_total             counter
//	fam_engine_plan_groups_total                counter
//	fam_engine_pool_workers                     gauge
//	fam_engine_datasets                         gauge
//	fam_engine_uptime_seconds                   gauge
//	fam_http_uploads_total                      counter
//	fam_http_requests_total            (endpoint, code) counter
//	fam_http_request_duration_seconds  (endpoint) histogram
//	fam_build_info                     (version, go_version) gauge (constant 1)
//	fam_go_goroutines                           gauge
//	fam_go_heap_alloc_bytes                     gauge
//	fam_go_gc_pause_seconds_total               counter
//	fam_trace_spans_total                       counter
//	fam_slow_queries_total                      counter
//
// The per-class scheduling series always carry the three built-in
// classes (low/normal/high) zero-filled plus any custom class the
// queue has observed, so a cold scrape already exposes every label a
// dashboard will query.

// durationBuckets are the upper bounds (seconds) of the request
// latency histogram; +Inf is implicit as the final bucket.
var durationBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.25, 0.5, 1, 2.5, 10}

// endpointMetrics accumulates one route's request counts by status
// code and its latency histogram.
type endpointMetrics struct {
	codes   map[int]uint64
	buckets []uint64 // len(durationBuckets)+1; last = +Inf
	sum     float64
	count   uint64
}

// httpMetrics is the handler-level request accounting behind
// /metrics. A plain mutex over small maps: the critical section is a
// few map operations, far off any hot path the engine itself owns.
type httpMetrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
}

func newHTTPMetrics() *httpMetrics {
	return &httpMetrics{endpoints: map[string]*endpointMetrics{}}
}

// record accounts one served request under its route pattern.
func (m *httpMetrics) record(endpoint string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	em := m.endpoints[endpoint]
	if em == nil {
		em = &endpointMetrics{codes: map[int]uint64{}, buckets: make([]uint64, len(durationBuckets)+1)}
		m.endpoints[endpoint] = em
	}
	em.codes[code]++
	em.sum += seconds
	em.count++
	for i, bound := range durationBuckets {
		if seconds <= bound {
			em.buckets[i]++
			return
		}
	}
	em.buckets[len(durationBuckets)]++
}

// statusRecorder captures the response status for the request metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// metricsWriter accumulates exposition lines; the # TYPE header is
// emitted once per metric family, on its first sample.
type metricsWriter struct {
	sb    strings.Builder
	typed map[string]bool
}

func newMetricsWriter() *metricsWriter {
	return &metricsWriter{typed: map[string]bool{}}
}

func (w *metricsWriter) family(name, kind, help string) {
	if w.typed[name] {
		return
	}
	w.typed[name] = true
	fmt.Fprintf(&w.sb, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// labels renders a label set in deterministic (sorted) order.
func labels(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	pairs := make([]string, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, fmt.Sprintf("%s=%q", kv[i], escapeLabel(kv[i+1])))
	}
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, ",") + "}"
}

func (w *metricsWriter) sample(name, labelSet string, value float64) {
	fmt.Fprintf(&w.sb, "%s%s %s\n", name, labelSet, formatValue(value))
}

// formatValue renders a sample value: integral values without an
// exponent (counter deltas stay grep-able in CI smoke checks), the
// rest in Go's shortest float form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// schedClasses returns the union of the built-in class names and every
// class observed by the queue, sorted — the stable label universe of
// the per-class series.
func schedClasses(per map[string]fam.SchedClassStats) []string {
	seen := map[string]bool{"low": true, "normal": true, "high": true}
	for class := range per {
		seen[class] = true
	}
	classes := make([]string, 0, len(seen))
	for class := range seen {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	return classes
}

// handleMetrics serves GET /metrics.
func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	stats := h.engine.Stats()
	out := newMetricsWriter()

	// Scheduling: the per-class proof of the starvation bound.
	out.family("fam_sched_granted_total", "counter", "Helper requests granted to a pool worker, by priority class.")
	out.family("fam_sched_shed_total", "counter", "Requests rejected by deadline admission control, by priority class.")
	out.family("fam_sched_stale_total", "counter", "Queued helper tickets discarded because their call had finished, by priority class.")
	out.family("fam_sched_queue_wait_seconds_total", "counter", "Summed enqueue-to-grant wait of granted requests, by priority class.")
	out.family("fam_sched_queue_depth", "gauge", "Currently queued helper requests, by priority class.")
	for _, class := range schedClasses(stats.Sched.PerClass) {
		cs := stats.Sched.PerClass[class]
		ls := labels("class", class)
		out.sample("fam_sched_granted_total", ls, float64(cs.Granted))
		out.sample("fam_sched_shed_total", ls, float64(cs.Shed))
		out.sample("fam_sched_stale_total", ls, float64(cs.Stale))
		out.sample("fam_sched_queue_wait_seconds_total", ls, cs.QueueWait.Seconds())
		out.sample("fam_sched_queue_depth", ls, float64(cs.Depth))
	}
	out.family("fam_sched_deficit_grants_total", "counter", "Grants where an overdue lighter class was served ahead of a heavier one (starvation relief).")
	out.sample("fam_sched_deficit_grants_total", "", float64(stats.Sched.DeficitGrants))
	out.family("fam_sched_policy_info", "gauge", "Active grant policy (constant 1; the policy is the label).")
	out.sample("fam_sched_policy_info", labels("policy", stats.Sched.Policy), 1)

	// Caches: the prep and result caches side by side.
	out.family("fam_cache_hits_total", "counter", "Cache hits, by cache.")
	out.family("fam_cache_misses_total", "counter", "Cache misses, by cache.")
	out.family("fam_cache_coalesced_total", "counter", "Lookups that joined an in-flight build instead of duplicating it, by cache.")
	out.family("fam_cache_evictions_total", "counter", "Entries evicted by the size policy, by cache.")
	out.family("fam_cache_expired_total", "counter", "Entries dropped by TTL expiry, by cache.")
	out.family("fam_cache_errors_total", "counter", "Failed fills (not cached), by cache.")
	out.family("fam_cache_entries", "gauge", "Live cache entries, by cache.")
	out.family("fam_cache_bytes", "gauge", "Bytes held by live cache entries, by cache.")
	out.family("fam_cache_max_bytes", "gauge", "Configured byte capacity (0 = unbounded), by cache.")
	for _, c := range []struct {
		name string
		s    fam.CacheStats
	}{{"prep", stats.PrepCache}, {"result", stats.ResultCache}} {
		ls := labels("cache", c.name)
		out.sample("fam_cache_hits_total", ls, float64(c.s.Hits))
		out.sample("fam_cache_misses_total", ls, float64(c.s.Misses))
		out.sample("fam_cache_coalesced_total", ls, float64(c.s.Coalesced))
		out.sample("fam_cache_evictions_total", ls, float64(c.s.Evictions))
		out.sample("fam_cache_expired_total", ls, float64(c.s.Expired))
		out.sample("fam_cache_errors_total", ls, float64(c.s.Errors))
		out.sample("fam_cache_entries", ls, float64(c.s.Entries))
		out.sample("fam_cache_bytes", ls, float64(c.s.Bytes))
		out.sample("fam_cache_max_bytes", ls, float64(c.s.MaxBytes))
	}

	// Engine: query and batch-planner counters.
	engineCounters := []struct {
		name, help string
		value      float64
	}{
		{"fam_engine_selects_total", "Selection queries accepted (cache hits included).", float64(stats.Selects)},
		{"fam_engine_evaluates_total", "Evaluation queries accepted.", float64(stats.Evaluates)},
		{"fam_engine_batches_total", "SelectBatch calls accepted.", float64(stats.Batches)},
		{"fam_engine_batch_queries_total", "Member queries across accepted batches.", float64(stats.BatchQueries)},
		{"fam_engine_shed_total", "Queries shed by engine admission control.", float64(stats.Shed)},
		{"fam_engine_planned_dedups_total", "Batch members answered by another member's in-batch result (fingerprint dedup).", float64(stats.PlannedDedups)},
		{"fam_engine_plan_groups_total", "Instance groups formed by the batch planner.", float64(stats.PlanGroups)},
	}
	for _, c := range engineCounters {
		out.family(c.name, "counter", c.help)
		out.sample(c.name, "", c.value)
	}
	out.family("fam_engine_pool_workers", "gauge", "Workers of the engine's shared pool.")
	out.sample("fam_engine_pool_workers", "", float64(stats.PoolWorkers))
	out.family("fam_engine_datasets", "gauge", "Registered datasets.")
	out.sample("fam_engine_datasets", "", float64(stats.Datasets))
	out.family("fam_engine_uptime_seconds", "gauge", "Seconds since the engine was built.")
	out.sample("fam_engine_uptime_seconds", "", stats.Uptime.Seconds())
	out.family("fam_http_uploads_total", "counter", "Datasets accepted through dataset upload.")
	out.sample("fam_http_uploads_total", "", float64(h.uploads.Load()))

	// Build identity and Go runtime health.
	out.family("fam_build_info", "gauge", "Build identity (constant 1; the version labels carry the information).")
	out.sample("fam_build_info", labels("version", BuildVersion, "go_version", runtime.Version()), 1)
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	out.family("fam_go_goroutines", "gauge", "Live goroutines.")
	out.sample("fam_go_goroutines", "", float64(runtime.NumGoroutine()))
	out.family("fam_go_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.")
	out.sample("fam_go_heap_alloc_bytes", "", float64(mem.HeapAlloc))
	out.family("fam_go_gc_pause_seconds_total", "counter", "Cumulative GC stop-the-world pause time.")
	out.sample("fam_go_gc_pause_seconds_total", "", float64(mem.PauseTotalNs)/1e9)

	// Tracing: span volume and slow-query count.
	out.family("fam_trace_spans_total", "counter", "Spans collected by finished request traces.")
	out.sample("fam_trace_spans_total", "", float64(h.traceSpans.Load()))
	out.family("fam_slow_queries_total", "counter", "Query requests slower than the slow-query threshold.")
	out.sample("fam_slow_queries_total", "", float64(h.slowQueries.Load()))

	// HTTP: per-endpoint request counters and latency histograms.
	out.family("fam_http_requests_total", "counter", "Requests served, by route pattern and status code.")
	out.family("fam_http_request_duration_seconds", "histogram", "Request latency, by route pattern.")
	h.metrics.mu.Lock()
	endpoints := make([]string, 0, len(h.metrics.endpoints))
	for ep := range h.metrics.endpoints {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		em := h.metrics.endpoints[ep]
		codes := make([]int, 0, len(em.codes))
		for code := range em.codes {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			out.sample("fam_http_requests_total", labels("endpoint", ep, "code", fmt.Sprintf("%d", code)), float64(em.codes[code]))
		}
		cum := uint64(0)
		for i, bound := range durationBuckets {
			cum += em.buckets[i]
			out.sample("fam_http_request_duration_seconds_bucket",
				labels("endpoint", ep, "le", formatValue(bound)), float64(cum))
		}
		cum += em.buckets[len(durationBuckets)]
		out.sample("fam_http_request_duration_seconds_bucket", labels("endpoint", ep, "le", "+Inf"), float64(cum))
		out.sample("fam_http_request_duration_seconds_sum", labels("endpoint", ep), em.sum)
		out.sample("fam_http_request_duration_seconds_count", labels("endpoint", ep), float64(em.count))
	}
	h.metrics.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(out.sb.String()))
}
