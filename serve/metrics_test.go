package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	fam "github.com/regretlab/fam"
	"github.com/regretlab/fam/internal/load"
)

// scrapeMetrics fetches and parses GET /metrics.
func scrapeMetrics(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	samples, err := load.ParseMetrics(resp.Body)
	if err != nil {
		t.Fatalf("parsing exposition: %v", err)
	}
	return samples
}

// TestMetricsEndpointCold: a cold scrape already serves every
// documented series — the per-class scheduler counters zero-filled for
// all three built-in classes, both cache label sets, the engine
// counters, and the policy info metric — so dashboards and the CI
// smoke can grep for fixed series names before any traffic.
func TestMetricsEndpointCold(t *testing.T) {
	srv, _ := newTestServer(t)
	m := scrapeMetrics(t, srv.URL)

	for _, class := range []string{"low", "normal", "high"} {
		for _, series := range []string{
			"fam_sched_granted_total", "fam_sched_shed_total", "fam_sched_stale_total",
			"fam_sched_queue_wait_seconds_total", "fam_sched_queue_depth",
		} {
			key := fmt.Sprintf(`%s{class="%s"}`, series, class)
			if _, ok := m[key]; !ok {
				t.Fatalf("cold scrape missing %s", key)
			}
		}
	}
	for _, cache := range []string{"prep", "result"} {
		for _, series := range []string{
			"fam_cache_hits_total", "fam_cache_misses_total", "fam_cache_coalesced_total",
			"fam_cache_evictions_total", "fam_cache_expired_total", "fam_cache_errors_total",
			"fam_cache_entries", "fam_cache_bytes", "fam_cache_max_bytes",
		} {
			key := fmt.Sprintf(`%s{cache="%s"}`, series, cache)
			if _, ok := m[key]; !ok {
				t.Fatalf("cold scrape missing %s", key)
			}
		}
	}
	for _, key := range []string{
		"fam_sched_deficit_grants_total",
		"fam_engine_selects_total", "fam_engine_evaluates_total",
		"fam_engine_batches_total", "fam_engine_batch_queries_total",
		"fam_engine_shed_total", "fam_engine_planned_dedups_total", "fam_engine_plan_groups_total",
		"fam_engine_pool_workers", "fam_engine_datasets", "fam_engine_uptime_seconds",
		"fam_http_uploads_total",
	} {
		if _, ok := m[key]; !ok {
			t.Fatalf("cold scrape missing %s", key)
		}
	}
	if m[`fam_sched_policy_info{policy="weighted-edf"}`] != 1 {
		t.Fatalf("policy info metric missing or wrong: %v", m)
	}
	if m["fam_engine_datasets"] != 1 {
		t.Fatalf("fam_engine_datasets = %v, want 1", m["fam_engine_datasets"])
	}
}

// TestMetricsPerClassGrantsAfterMixedBurst drives a priority-mixed
// burst and asserts the per-class grant counters all advanced — the
// observable form of the starvation-bound guarantee — plus the
// per-endpoint request counters and latency histogram of the serving
// route.
func TestMetricsPerClassGrantsAfterMixedBurst(t *testing.T) {
	// A small pool under a concurrent burst of explicitly parallel
	// requests: each request fans out wider than one goroutine no matter
	// the host's CPU count, so helper tickets of every class queue while
	// workers are popping — each class collects real grants, not just
	// stale sweeps.
	engine := fam.NewEngine(fam.EngineConfig{Workers: 2})
	t.Cleanup(engine.Close)
	ds, err := fam.Hotels(120, 3)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := fam.UniformLinear(ds.Dim())
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Register("hotels", ds, dist); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(engine))
	t.Cleanup(srv.Close)

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	seed := uint64(100)
	for _, prio := range []string{"low", "normal", "high"} {
		for i := 0; i < 3; i++ {
			seed++
			prio, seed := prio, seed
			wg.Add(1)
			go func() {
				defer wg.Done()
				var resp BatchSelectResponse
				code := postJSON(t, srv.URL+"/v2/select", BatchSelectRequest{
					Queries: []QueryRequest{{Dataset: "hotels", K: 5, Seed: seed, SampleSize: 400}},
					Exec:    ExecRequest{Priority: prio, Parallelism: 4},
				}, &resp)
				if code != http.StatusOK {
					errs <- fmt.Sprintf("burst member (prio %s) status %d", prio, code)
					return
				}
				if len(resp.Results) != 1 || resp.Results[0].Error != "" {
					errs <- fmt.Sprintf("burst member (prio %s) failed: %+v", prio, resp.Results)
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}

	m := scrapeMetrics(t, srv.URL)
	for _, class := range []string{"low", "normal", "high"} {
		if g := m[fmt.Sprintf(`fam_sched_granted_total{class="%s"}`, class)]; g <= 0 {
			t.Fatalf("fam_sched_granted_total{class=%q} = %v after a mixed burst, want > 0", class, g)
		}
	}
	if m[`fam_cache_misses_total{cache="result"}`] <= 0 {
		t.Fatal("result-cache misses did not advance over cold queries")
	}
	if got := m[`fam_http_requests_total{code="200",endpoint="POST /v2/select"}`]; got < 9 {
		t.Fatalf("per-endpoint request counter = %v, want >= 9", got)
	}
	if got := m[`fam_http_request_duration_seconds_count{endpoint="POST /v2/select"}`]; got < 9 {
		t.Fatalf("latency histogram count = %v, want >= 9", got)
	}
	inf := m[`fam_http_request_duration_seconds_bucket{endpoint="POST /v2/select",le="+Inf"}`]
	if cnt := m[`fam_http_request_duration_seconds_count{endpoint="POST /v2/select"}`]; inf != cnt {
		t.Fatalf("+Inf bucket %v != histogram count %v", inf, cnt)
	}
	if m["fam_engine_batches_total"] < 9 || m["fam_engine_batch_queries_total"] < 9 {
		t.Fatalf("batch counters did not advance: %v / %v",
			m["fam_engine_batches_total"], m["fam_engine_batch_queries_total"])
	}
}

// TestMetricsRecordsErrorStatuses: failed requests land in the
// per-endpoint counters under their real status code.
func TestMetricsRecordsErrorStatuses(t *testing.T) {
	srv, _ := newTestServer(t)
	if code := postJSON(t, srv.URL+"/v1/select", SelectRequest{Dataset: "missing", K: 3}, &ErrorResponse{}); code != http.StatusNotFound {
		t.Fatalf("unknown dataset status %d", code)
	}
	m := scrapeMetrics(t, srv.URL)
	if got := m[`fam_http_requests_total{code="404",endpoint="POST /v1/select"}`]; got != 1 {
		t.Fatalf("404 counter = %v, want 1", got)
	}
}
