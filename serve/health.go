package serve

import (
	"net/http"
	"sync"
	"time"
)

// This file implements GET /healthz: the cheap JSON readiness probe a
// cluster router polls on every health tick. Unlike /metrics (full
// Prometheus text, ReadMemStats) or /v2/stats (the whole EngineStats
// snapshot), /healthz answers with exactly the numbers a routing score
// needs — liveness, live queue depth, the shed rate over a short
// trailing window, and the result-cache hit rate — so a router checking
// N replicas every few hundred milliseconds never parses exposition
// text on its hot path.

// HealthzResponse is the body of GET /healthz.
type HealthzResponse struct {
	// OK is true when the handler answered at all — a router treats a
	// non-200 or unreachable /healthz as down, so the field is the
	// positive half of that contract.
	OK bool `json:"ok"`
	// QueueDepth is the number of helper requests currently queued on
	// the engine's shared pool.
	QueueDepth int `json:"queue_depth"`
	// ShedRate is the fraction of query requests answered 429 over the
	// trailing window (0 when the window saw no queries).
	ShedRate float64 `json:"shed_rate"`
	// WindowSeconds is the shed-rate window length.
	WindowSeconds int `json:"window_seconds"`
	// ResultHitRate is the result cache's lifetime hit fraction (0 when
	// no lookups yet) — the warmth signal affinity routing feeds on.
	ResultHitRate float64 `json:"result_hit_rate"`
	// Datasets counts the registered datasets.
	Datasets int `json:"datasets"`
	// UptimeS is seconds since the engine was built.
	UptimeS float64 `json:"uptime_s"`
}

// shedWindowSeconds is the length of the trailing shed-rate window.
const shedWindowSeconds = 10

// shedWindow is a ring of per-second buckets counting query requests
// and 429 answers, so /healthz reports a recent shed rate rather than a
// lifetime average that never recovers after one overload burst.
type shedWindow struct {
	mu      sync.Mutex
	buckets [shedWindowSeconds]struct {
		sec         int64
		total, shed uint64
	}
}

// note accounts one finished query request.
func (w *shedWindow) note(now time.Time, shed bool) {
	sec := now.Unix()
	w.mu.Lock()
	defer w.mu.Unlock()
	b := &w.buckets[sec%shedWindowSeconds]
	if b.sec != sec {
		b.sec, b.total, b.shed = sec, 0, 0
	}
	b.total++
	if shed {
		b.shed++
	}
}

// rate reports the shed fraction over the live window (0 when empty).
func (w *shedWindow) rate(now time.Time) float64 {
	floor := now.Unix() - shedWindowSeconds
	w.mu.Lock()
	defer w.mu.Unlock()
	var total, shed uint64
	for _, b := range w.buckets {
		if b.sec > floor {
			total += b.total
			shed += b.shed
		}
	}
	if total == 0 {
		return 0
	}
	return float64(shed) / float64(total)
}

// handleHealthz serves GET /healthz.
func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	stats := h.engine.Stats()
	hitRate := 0.0
	if lookups := stats.ResultCache.Hits + stats.ResultCache.Misses; lookups > 0 {
		hitRate = float64(stats.ResultCache.Hits) / float64(lookups)
	}
	h.writeJSON(w, http.StatusOK, HealthzResponse{
		OK:            true,
		QueueDepth:    h.engine.QueueDepth(),
		ShedRate:      h.shed.rate(h.clock()),
		WindowSeconds: shedWindowSeconds,
		ResultHitRate: hitRate,
		Datasets:      stats.Datasets,
		UptimeS:       stats.Uptime.Seconds(),
	})
}
