package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/regretlab/fam/internal/obs"
)

// Tracing headers. A client arms tracing for its request by sending
// either header: X-Fam-Trace carries a bare 32-hex trace ID to adopt
// (any other non-empty value arms tracing under a fresh ID), and
// traceparent is the W3C form, whose span ID becomes the remote parent
// of the local request span. The server echoes both headers (with the
// resolved trace ID and the local root span) on every traced response.
const (
	HeaderTrace       = "X-Fam-Trace"
	HeaderTraceparent = "traceparent"
)

// reqIDKey carries the per-request ID through the request context so
// error envelopes and log lines agree on it.
type reqIDKey struct{}

func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey{}, id)
}

func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// traceHeaders reads the client's tracing intent from the request.
// X-Fam-Trace wins the trace ID when both headers carry one; a
// malformed traceparent is ignored rather than failing the request —
// tracing must never break serving.
func traceHeaders(r *http.Request) (traceID, remoteSpan string, armed bool) {
	if v := r.Header.Get(HeaderTraceparent); v != "" {
		if t, s, ok := obs.ParseTraceparent(v); ok {
			traceID, remoteSpan, armed = t, s, true
		}
	}
	if v := r.Header.Get(HeaderTrace); v != "" {
		armed = true
		if obs.ValidTraceID(v) {
			traceID = v
		}
	}
	return traceID, remoteSpan, armed
}

// isQueryPattern reports whether the route runs engine queries — the
// endpoints slow-query capture and trace sampling apply to.
func isQueryPattern(pattern string) bool {
	switch pattern {
	case "POST /v1/select", "POST /v1/evaluate", "POST /v2/select":
		return true
	}
	return false
}

// traceLogEntry is one JSONL line of the span-tree trace log: request
// identity and outcome plus the finished span tree.
type traceLogEntry struct {
	Time      time.Time     `json:"time"`
	TraceID   string        `json:"trace_id"`
	RequestID string        `json:"request_id"`
	Endpoint  string        `json:"endpoint"`
	Status    int           `json:"status"`
	DurMS     float64       `json:"dur_ms"`
	Slow      bool          `json:"slow,omitempty"`
	Sampled   bool          `json:"sampled,omitempty"`
	Spans     *obs.JSONSpan `json:"spans,omitempty"`
}

// traceSink serializes trace-log writes: one marshaled line per entry,
// never interleaved, over any io.Writer.
type traceSink struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *traceSink) write(e traceLogEntry) {
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	b = append(b, '\n')
	s.mu.Lock()
	_, _ = s.w.Write(b)
	s.mu.Unlock()
}
