package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	fam "github.com/regretlab/fam"
	"github.com/regretlab/fam/internal/load"
)

// newTraceServer builds a test server with an injected fixed-step
// clock and a trace buffer.
func newTraceServer(t *testing.T, cfg HandlerConfig) (*httptest.Server, *bytes.Buffer) {
	t.Helper()
	engine := fam.NewEngine(fam.EngineConfig{})
	t.Cleanup(engine.Close)
	ds, err := fam.Hotels(120, 3)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := fam.UniformLinear(ds.Dim())
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Register("hotels", ds, dist); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg.Trace = &buf
	srv := httptest.NewServer(NewHandlerConfig(engine, cfg))
	t.Cleanup(srv.Close)
	return srv, &buf
}

// The handler's clock — not the wall clock — resolves relative
// deadlines: with a clock frozen in the past, a deadline generous on
// the wall clock still resolves to an expired instant and sheds.
func TestServeClockResolvesDeadlines(t *testing.T) {
	frozen := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	srv, _ := newTraceServer(t, HandlerConfig{Clock: func() time.Time { return frozen }})

	// Admission compares the resolved deadline against the real wall
	// clock, so any deadline anchored at the frozen epoch has long
	// passed — the request must shed (429), proving toExec saw the
	// injected clock rather than time.Now.
	req := SelectRequest{Dataset: "hotels", K: 3, Seed: 7, SampleSize: 80}
	hreq, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/select", jsonBody(t, req))
	hreq.Header.Set(HeaderDeadlineMS, "60000")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("frozen-clock deadline: status %d, want 429", resp.StatusCode)
	}
}

// A body that explicitly carries deadline_ms: 0 leaves the knob unset,
// so the header must still apply.
func TestServeHeaderAppliesOverZeroBodyDeadline(t *testing.T) {
	srv, _ := newTraceServer(t, HandlerConfig{})
	body := map[string]any{
		"queries": []map[string]any{{"dataset": "hotels", "k": 3, "seed": 7, "sample_size": 80}},
		"exec":    map[string]any{"deadline_ms": 0},
	}
	hreq, _ := http.NewRequest(http.MethodPost, srv.URL+"/v2/select", jsonBody(t, body))
	hreq.Header.Set(HeaderDeadlineMS, strconv.Itoa(-1000))
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The already-expired header deadline must shed on admission (429),
	// not run and fail mid-flight (503).
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("zero body deadline + negative header: status %d, want 429", resp.StatusCode)
	}
}

// A negative header deadline is expired on arrival: admission control
// sheds it before any solver work (429), never 503.
func TestServeNegativeHeaderDeadlineShedsNot503(t *testing.T) {
	srv, _ := newTraceServer(t, HandlerConfig{})
	for _, path := range []string{"/v1/select", "/v2/select"} {
		var body any = SelectRequest{Dataset: "hotels", K: 3, Seed: 7, SampleSize: 80}
		if path == "/v2/select" {
			body = BatchSelectRequest{Queries: []QueryRequest{{Dataset: "hotels", K: 3, Seed: 7, SampleSize: 80}}}
		}
		hreq, _ := http.NewRequest(http.MethodPost, srv.URL+path, jsonBody(t, body))
		hreq.Header.Set(HeaderDeadlineMS, "-1")
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s: negative header deadline answered %d, want 429", path, resp.StatusCode)
		}
	}
}

// Accepted requests are recorded as replayable JSONL trace entries:
// one line per v1 query, one per v2 batch member, carrying the
// semantic query and the post-header-fold scheduling knobs.
func TestServeTraceRecording(t *testing.T) {
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	var ticks int
	srv, buf := newTraceServer(t, HandlerConfig{Clock: func() time.Time {
		ticks++
		return t0.Add(time.Duration(ticks) * 10 * time.Millisecond)
	}})

	var sel SelectResponse
	if code := postJSON(t, srv.URL+"/v1/select", SelectRequest{Dataset: "hotels", K: 4, Seed: 9, SampleSize: 80}, &sel); code != http.StatusOK {
		t.Fatalf("v1 select status %d", code)
	}
	var ev EvaluateResponse
	if code := postJSON(t, srv.URL+"/v1/evaluate", EvaluateRequest{Dataset: "hotels", Set: []int{0, 1}, SampleSize: 80}, &ev); code != http.StatusOK {
		t.Fatalf("v1 evaluate status %d", code)
	}
	// A v2 batch whose scheduling knobs arrive by header: the recorded
	// entries must carry the folded priority.
	batch := BatchSelectRequest{Queries: []QueryRequest{
		{Dataset: "hotels", K: 2, Seed: 9, SampleSize: 80},
		{Dataset: "hotels", K: 3, Seed: 9, SampleSize: 80, Algorithm: fam.GreedyAdd},
	}}
	hreq, _ := http.NewRequest(http.MethodPost, srv.URL+"/v2/select", jsonBody(t, batch))
	hreq.Header.Set(HeaderPriority, "high")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v2 select status %d", resp.StatusCode)
	}
	// A rejected request (unparseable body) must not be recorded.
	badResp, err := http.Post(srv.URL+"/v1/select", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()

	entries, err := load.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(entries) != 4 {
		t.Fatalf("recorded %d entries, want 4 (select, evaluate, 2 batch members)", len(entries))
	}
	if entries[0].Dataset != "hotels" || entries[0].K != 4 || entries[0].Seed != 9 {
		t.Fatalf("select entry mis-recorded: %+v", entries[0])
	}
	if entries[1].Set == nil || len(entries[1].Set) != 2 {
		t.Fatalf("evaluate entry mis-recorded: %+v", entries[1])
	}
	if entries[2].Priority != "high" || entries[3].Priority != "high" {
		t.Fatalf("batch entries missing folded header priority: %+v / %+v", entries[2], entries[3])
	}
	if entries[3].Algorithm != fam.GreedyAdd.String() {
		t.Fatalf("non-default algorithm not recorded by name: %+v", entries[3])
	}
	if entries[2].TMS != entries[3].TMS {
		t.Fatalf("batch members recorded at different offsets: %g vs %g", entries[2].TMS, entries[3].TMS)
	}
	if !(entries[0].TMS < entries[1].TMS && entries[1].TMS < entries[2].TMS) {
		t.Fatalf("request offsets not increasing: %g, %g, %g",
			entries[0].TMS, entries[1].TMS, entries[2].TMS)
	}

	// The recorded trace replays against the same engine library-side.
	e2, _, err := load.BuildEngine(fam.EngineConfig{}, "hotels:120:3", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	outcomes, _, err := load.Run(context.Background(), load.EngineTarget{Engine: e2}, entries, load.RunConfig{})
	if err != nil {
		t.Fatalf("replaying recorded trace: %v", err)
	}
	for _, o := range outcomes {
		if o.Status != http.StatusOK {
			t.Fatalf("replayed entry %d: status %d (%s)", o.I, o.Status, o.Err)
		}
	}
}

func jsonBody(t *testing.T, v any) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}
