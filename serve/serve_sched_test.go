package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestServeV2StatsAndDatasets: the v2 surface carries stats and
// datasets with the same success bodies as v1 (one engine, no drift)
// and the typed {code, message} envelope on failures.
func TestServeV2StatsAndDatasets(t *testing.T) {
	srv, _ := newTestServer(t)

	var v1, v2 DatasetsResponse
	if code := getJSON(t, srv.URL+"/v1/datasets", &v1); code != http.StatusOK {
		t.Fatalf("v1 datasets: %d", code)
	}
	if code := getJSON(t, srv.URL+"/v2/datasets", &v2); code != http.StatusOK {
		t.Fatalf("v2 datasets: %d", code)
	}
	if len(v2.Datasets) != len(v1.Datasets) || v2.Datasets[0].Name != v1.Datasets[0].Name {
		t.Fatalf("v2 datasets %+v differ from v1 %+v", v2.Datasets, v1.Datasets)
	}

	var stats StatsResponse
	if code := getJSON(t, srv.URL+"/v2/stats", &stats); code != http.StatusOK {
		t.Fatalf("v2 stats: %d", code)
	}
	if stats.Engine.Datasets != 1 {
		t.Fatalf("v2 stats engine datasets = %d", stats.Engine.Datasets)
	}
	if stats.Engine.Sched.Policy != "weighted-edf" {
		t.Fatalf("sched policy = %q, want weighted-edf", stats.Engine.Sched.Policy)
	}

	// A v2 upload failure answers the typed envelope; the v1 mirror
	// keeps the frozen {error} shape.
	resp, err := http.Post(srv.URL+"/v2/datasets", "text/csv", strings.NewReader("not,a\nvalid csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var envelope ErrorV2
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || envelope.Code != CodeBadRequest || envelope.Message == "" {
		t.Fatalf("v2 upload error = %d %+v, want 400 bad_request", resp.StatusCode, envelope)
	}
}

// TestServeV2ErrorEnvelope: every v2 failure mode answers {code,
// message}; per-member batch failures carry the member code.
func TestServeV2ErrorEnvelope(t *testing.T) {
	srv, _ := newTestServer(t)

	var envelope ErrorV2
	if code := postJSON(t, srv.URL+"/v2/select", BatchSelectRequest{}, &envelope); code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d", code)
	}
	if envelope.Code != CodeBadRequest || envelope.Message == "" {
		t.Fatalf("empty batch envelope = %+v", envelope)
	}

	var batch BatchSelectResponse
	req := BatchSelectRequest{Queries: []QueryRequest{
		{Dataset: "nope", K: 3},
		{Dataset: "hotels", K: 0},
		{Dataset: "hotels", K: 3, SampleSize: 100},
	}}
	if code := postJSON(t, srv.URL+"/v2/select", req, &batch); code != http.StatusOK {
		t.Fatalf("batch: %d", code)
	}
	if got := batch.Results[0]; got.Status != http.StatusNotFound || got.Code != CodeNotFound {
		t.Fatalf("unknown-dataset member = %+v", got)
	}
	if got := batch.Results[1]; got.Status != http.StatusBadRequest || got.Code != CodeBadRequest {
		t.Fatalf("bad-k member = %+v", got)
	}
	if batch.Results[2].Error != "" || len(batch.Results[2].Indices) != 3 {
		t.Fatalf("good member = %+v", batch.Results[2])
	}
}

// TestServeShedMapsTo429: a request whose deadline already passed is
// shed by admission control and answers 429 — via the exec block on v2
// and via the X-Fam-Deadline-Ms header on the frozen v1 shim.
func TestServeShedMapsTo429(t *testing.T) {
	srv, engine := newTestServer(t)

	var envelope ErrorV2
	req := BatchSelectRequest{
		Queries: []QueryRequest{{Dataset: "hotels", K: 3, SampleSize: 100}},
		Exec:    ExecRequest{DeadlineMS: -1},
	}
	if code := postJSON(t, srv.URL+"/v2/select", req, &envelope); code != http.StatusTooManyRequests {
		t.Fatalf("expired v2 batch: %d", code)
	}
	if envelope.Code != CodeShed {
		t.Fatalf("v2 shed envelope = %+v, want code %q", envelope, CodeShed)
	}

	// v1 shim: same admission, frozen envelope, driven by headers.
	body, _ := json.Marshal(SelectRequest{Dataset: "hotels", K: 3, SampleSize: 100})
	hreq, err := http.NewRequest("POST", srv.URL+"/v1/select", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set(HeaderDeadlineMS, "-1")
	hreq.Header.Set(HeaderPriority, "low")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v1err ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&v1err); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests || v1err.Error == "" {
		t.Fatalf("expired v1 select = %d %+v, want 429 with the frozen envelope", resp.StatusCode, v1err)
	}

	if s := engine.Stats(); s.Shed != 2 {
		t.Fatalf("engine shed = %d, want 2", s.Shed)
	}

	// A bad priority header is a 400, not a shed.
	hreq2, _ := http.NewRequest("POST", srv.URL+"/v1/select", bytes.NewReader(body))
	hreq2.Header.Set(HeaderPriority, "urgent")
	resp2, err := http.DefaultClient.Do(hreq2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad priority header: %d, want 400", resp2.StatusCode)
	}
}

// TestServeSchedulingExecAccepted: priority/deadline/max_queue knobs on
// admitted requests change no answers — the scheduled response is
// bit-identical to the plain one and hits its result-cache entry.
func TestServeSchedulingExecAccepted(t *testing.T) {
	srv, _ := newTestServer(t)

	var plain BatchSelectResponse
	req := BatchSelectRequest{Queries: []QueryRequest{{Dataset: "hotels", K: 4, Seed: 7, SampleSize: 100}}}
	if code := postJSON(t, srv.URL+"/v2/select", req, &plain); code != http.StatusOK {
		t.Fatalf("plain: %d", code)
	}
	var sched BatchSelectResponse
	req.Exec = ExecRequest{Priority: "high", DeadlineMS: 60_000, MaxQueue: 1 << 20, Parallelism: 2}
	if code := postJSON(t, srv.URL+"/v2/select", req, &sched); code != http.StatusOK {
		t.Fatalf("scheduled: %d", code)
	}
	if len(sched.Results[0].Indices) != len(plain.Results[0].Indices) {
		t.Fatalf("scheduled answer differs: %v vs %v", sched.Results[0].Indices, plain.Results[0].Indices)
	}
	for i := range plain.Results[0].Indices {
		if sched.Results[0].Indices[i] != plain.Results[0].Indices[i] {
			t.Fatalf("scheduled answer differs: %v vs %v", sched.Results[0].Indices, plain.Results[0].Indices)
		}
	}
	if !sched.Results[0].Cached {
		t.Fatal("scheduling knobs leaked into the result-cache key")
	}
}

// TestServeDeadlineMSClampNoOverflow: an absurdly large deadline_ms
// means "generous deadline", never an int64 overflow into the past —
// the request must be answered, not shed.
func TestServeDeadlineMSClampNoOverflow(t *testing.T) {
	srv, _ := newTestServer(t)
	var resp BatchSelectResponse
	req := BatchSelectRequest{
		Queries: []QueryRequest{{Dataset: "hotels", K: 3, SampleSize: 100}},
		Exec:    ExecRequest{DeadlineMS: 1<<63 - 1},
	}
	if code := postJSON(t, srv.URL+"/v2/select", req, &resp); code != http.StatusOK {
		t.Fatalf("MaxInt64 deadline_ms answered %d, want 200", code)
	}
	if resp.Results[0].Error != "" || len(resp.Results[0].Indices) != 3 {
		t.Fatalf("clamped-deadline slot = %+v", resp.Results[0])
	}
}

// TestServeDeadlineMSNegativeOverflowStillSheds: a huge negative
// deadline_ms must stay expired (429), not wrap into a far-future
// deadline.
func TestServeDeadlineMSNegativeOverflowStillSheds(t *testing.T) {
	srv, _ := newTestServer(t)
	var envelope ErrorV2
	req := BatchSelectRequest{
		Queries: []QueryRequest{{Dataset: "hotels", K: 3, SampleSize: 100}},
		Exec:    ExecRequest{DeadlineMS: -(1<<63 - 1)},
	}
	if code := postJSON(t, srv.URL+"/v2/select", req, &envelope); code != http.StatusTooManyRequests {
		t.Fatalf("MinInt64-ish deadline_ms answered %d, want 429", code)
	}
	if envelope.Code != CodeShed {
		t.Fatalf("envelope = %+v, want code %q", envelope, CodeShed)
	}
}
