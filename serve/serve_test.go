package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	fam "github.com/regretlab/fam"
)

func newTestServer(t *testing.T) (*httptest.Server, *fam.Engine) {
	t.Helper()
	engine := fam.NewEngine(fam.EngineConfig{})
	t.Cleanup(engine.Close)
	ds, err := fam.Hotels(120, 3)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := fam.UniformLinear(ds.Dim())
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Register("hotels", ds, dist); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(engine))
	t.Cleanup(srv.Close)
	return srv, engine
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp.StatusCode
}

func TestServeEndToEnd(t *testing.T) {
	srv, _ := newTestServer(t)

	var dsResp DatasetsResponse
	if code := getJSON(t, srv.URL+"/v1/datasets", &dsResp); code != http.StatusOK {
		t.Fatalf("datasets status %d", code)
	}
	if len(dsResp.Datasets) != 1 || dsResp.Datasets[0].Name != "hotels" || dsResp.Datasets[0].N != 120 {
		t.Fatalf("datasets = %+v", dsResp)
	}

	req := SelectRequest{Dataset: "hotels", K: 5, Seed: 7, SampleSize: 120}
	var cold SelectResponse
	if code := postJSON(t, srv.URL+"/v1/select", req, &cold); code != http.StatusOK {
		t.Fatalf("select status %d", code)
	}
	if len(cold.Indices) != 5 || len(cold.Labels) != 5 || cold.Cached {
		t.Fatalf("cold select = %+v", cold)
	}
	if cold.Metrics.ARR < 0 || cold.Metrics.ARR > 1 {
		t.Fatalf("ARR = %v", cold.Metrics.ARR)
	}

	// Same request again: bit-identical answer served from the result
	// cache.
	var warm SelectResponse
	if code := postJSON(t, srv.URL+"/v1/select", req, &warm); code != http.StatusOK {
		t.Fatalf("warm select status %d", code)
	}
	if !warm.Cached {
		t.Fatal("second identical select not served from cache")
	}
	for i := range cold.Indices {
		if warm.Indices[i] != cold.Indices[i] {
			t.Fatalf("warm indices %v != cold %v", warm.Indices, cold.Indices)
		}
	}

	// Evaluate the returned selection; ARR must round-trip exactly (same
	// seed and sample size → the same sampled instance).
	var ev EvaluateResponse
	code := postJSON(t, srv.URL+"/v1/evaluate", EvaluateRequest{
		Dataset: "hotels", Set: cold.Indices, Seed: 7, SampleSize: 120,
	}, &ev)
	if code != http.StatusOK {
		t.Fatalf("evaluate status %d", code)
	}
	if ev.Metrics.ARR != cold.Metrics.ARR {
		t.Fatalf("evaluate ARR %v != select ARR %v", ev.Metrics.ARR, cold.Metrics.ARR)
	}

	var stats StatsResponse
	if code := getJSON(t, srv.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Engine.Selects != 2 || stats.Engine.Evaluates != 1 {
		t.Fatalf("engine counters = %+v", stats.Engine)
	}
	if stats.Engine.ResultCache.Hits == 0 || stats.Engine.PrepCache.Misses == 0 {
		t.Fatalf("cache stats = %+v", stats.Engine)
	}
	if stats.HTTP.Requests == 0 || stats.HTTP.ClientError != 0 || stats.HTTP.ServerError != 0 {
		t.Fatalf("http stats = %+v", stats.HTTP)
	}
}

func TestServeErrorMapping(t *testing.T) {
	srv, _ := newTestServer(t)

	cases := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"unknown dataset", "/v1/select", SelectRequest{Dataset: "nope", K: 3}, http.StatusNotFound},
		{"bad k", "/v1/select", SelectRequest{Dataset: "hotels", K: 0}, http.StatusBadRequest},
		{"bad algorithm", "/v1/select", SelectRequest{Dataset: "hotels", K: 3, Algorithm: "quantum"}, http.StatusBadRequest},
		{"bad epsilon", "/v1/select", SelectRequest{Dataset: "hotels", K: 3, Epsilon: 7}, http.StatusBadRequest},
		{"invalid set", "/v1/evaluate", EvaluateRequest{Dataset: "hotels", Set: []int{1, 1}, SampleSize: 50}, http.StatusBadRequest},
		{"empty set", "/v1/evaluate", EvaluateRequest{Dataset: "hotels", SampleSize: 50}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		var errResp ErrorResponse
		if code := postJSON(t, srv.URL+tc.url, tc.body, &errResp); code != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.name, code, tc.want)
		}
		if errResp.Error == "" {
			t.Fatalf("%s: empty error body", tc.name)
		}
	}

	// Malformed JSON.
	resp, err := http.Post(srv.URL+"/v1/select", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}

	// Unknown route/method.
	resp, err = http.Get(srv.URL + "/v1/select")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/select: status %d", resp.StatusCode)
	}
}

// TestServeClosedEngine: queries against a closed engine surface as 503.
func TestServeClosedEngine(t *testing.T) {
	srv, engine := newTestServer(t)
	engine.Close()
	var errResp ErrorResponse
	if code := postJSON(t, srv.URL+"/v1/select", SelectRequest{Dataset: "hotels", K: 3}, &errResp); code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", code)
	}
}

// TestServeMatchesLibrary: the HTTP layer must not perturb results —
// the response equals a direct library call bit for bit.
func TestServeMatchesLibrary(t *testing.T) {
	srv, _ := newTestServer(t)
	ds, err := fam.Hotels(120, 3)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := fam.UniformLinear(ds.Dim())
	if err != nil {
		t.Fatal(err)
	}
	opts := fam.SelectOptions{K: 4, Seed: 11, SampleSize: 100, Algorithm: fam.GreedyAdd}
	want, err := fam.Select(context.Background(), ds, dist, opts)
	if err != nil {
		t.Fatal(err)
	}
	var got SelectResponse
	code := postJSON(t, srv.URL+"/v1/select", SelectRequest{
		Dataset: "hotels", K: 4, Seed: 11, SampleSize: 100, Algorithm: "greedy-add",
	}, &got)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(got.Indices) != len(want.Indices) {
		t.Fatalf("got %v, want %v", got.Indices, want.Indices)
	}
	for i := range want.Indices {
		if got.Indices[i] != want.Indices[i] {
			t.Fatalf("got %v, want %v", got.Indices, want.Indices)
		}
	}
	if got.Metrics.ARR != want.Metrics.ARR {
		t.Fatalf("ARR %v, want %v", got.Metrics.ARR, want.Metrics.ARR)
	}
}
