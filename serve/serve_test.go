package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	fam "github.com/regretlab/fam"
)

func newTestServer(t *testing.T) (*httptest.Server, *fam.Engine) {
	t.Helper()
	engine := fam.NewEngine(fam.EngineConfig{})
	t.Cleanup(engine.Close)
	ds, err := fam.Hotels(120, 3)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := fam.UniformLinear(ds.Dim())
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Register("hotels", ds, dist); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(engine))
	t.Cleanup(srv.Close)
	return srv, engine
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp.StatusCode
}

func TestServeEndToEnd(t *testing.T) {
	srv, _ := newTestServer(t)

	var dsResp DatasetsResponse
	if code := getJSON(t, srv.URL+"/v1/datasets", &dsResp); code != http.StatusOK {
		t.Fatalf("datasets status %d", code)
	}
	if len(dsResp.Datasets) != 1 || dsResp.Datasets[0].Name != "hotels" || dsResp.Datasets[0].N != 120 {
		t.Fatalf("datasets = %+v", dsResp)
	}

	req := SelectRequest{Dataset: "hotels", K: 5, Seed: 7, SampleSize: 120}
	var cold SelectResponse
	if code := postJSON(t, srv.URL+"/v1/select", req, &cold); code != http.StatusOK {
		t.Fatalf("select status %d", code)
	}
	if len(cold.Indices) != 5 || len(cold.Labels) != 5 || cold.Cached {
		t.Fatalf("cold select = %+v", cold)
	}
	if cold.Metrics.ARR < 0 || cold.Metrics.ARR > 1 {
		t.Fatalf("ARR = %v", cold.Metrics.ARR)
	}

	// Same request again: bit-identical answer served from the result
	// cache.
	var warm SelectResponse
	if code := postJSON(t, srv.URL+"/v1/select", req, &warm); code != http.StatusOK {
		t.Fatalf("warm select status %d", code)
	}
	if !warm.Cached {
		t.Fatal("second identical select not served from cache")
	}
	for i := range cold.Indices {
		if warm.Indices[i] != cold.Indices[i] {
			t.Fatalf("warm indices %v != cold %v", warm.Indices, cold.Indices)
		}
	}

	// Evaluate the returned selection; ARR must round-trip exactly (same
	// seed and sample size → the same sampled instance).
	var ev EvaluateResponse
	code := postJSON(t, srv.URL+"/v1/evaluate", EvaluateRequest{
		Dataset: "hotels", Set: cold.Indices, Seed: 7, SampleSize: 120,
	}, &ev)
	if code != http.StatusOK {
		t.Fatalf("evaluate status %d", code)
	}
	if ev.Metrics.ARR != cold.Metrics.ARR {
		t.Fatalf("evaluate ARR %v != select ARR %v", ev.Metrics.ARR, cold.Metrics.ARR)
	}

	var stats StatsResponse
	if code := getJSON(t, srv.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Engine.Selects != 2 || stats.Engine.Evaluates != 1 {
		t.Fatalf("engine counters = %+v", stats.Engine)
	}
	if stats.Engine.ResultCache.Hits == 0 || stats.Engine.PrepCache.Misses == 0 {
		t.Fatalf("cache stats = %+v", stats.Engine)
	}
	if stats.HTTP.Requests == 0 || stats.HTTP.ClientError != 0 || stats.HTTP.ServerError != 0 {
		t.Fatalf("http stats = %+v", stats.HTTP)
	}
}

func TestServeErrorMapping(t *testing.T) {
	srv, _ := newTestServer(t)

	cases := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"unknown dataset", "/v1/select", SelectRequest{Dataset: "nope", K: 3}, http.StatusNotFound},
		{"bad k", "/v1/select", SelectRequest{Dataset: "hotels", K: 0}, http.StatusBadRequest},
		{"bad algorithm", "/v1/select", SelectRequest{Dataset: "hotels", K: 3, Algorithm: "quantum"}, http.StatusBadRequest},
		{"bad epsilon", "/v1/select", SelectRequest{Dataset: "hotels", K: 3, Epsilon: 7}, http.StatusBadRequest},
		{"invalid set", "/v1/evaluate", EvaluateRequest{Dataset: "hotels", Set: []int{1, 1}, SampleSize: 50}, http.StatusBadRequest},
		{"empty set", "/v1/evaluate", EvaluateRequest{Dataset: "hotels", SampleSize: 50}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		var errResp ErrorResponse
		if code := postJSON(t, srv.URL+tc.url, tc.body, &errResp); code != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.name, code, tc.want)
		}
		if errResp.Error == "" {
			t.Fatalf("%s: empty error body", tc.name)
		}
	}

	// Malformed JSON.
	resp, err := http.Post(srv.URL+"/v1/select", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}

	// Unknown route/method.
	resp, err = http.Get(srv.URL + "/v1/select")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/select: status %d", resp.StatusCode)
	}
}

// TestServeClosedEngine: queries against a closed engine surface as 503.
func TestServeClosedEngine(t *testing.T) {
	srv, engine := newTestServer(t)
	engine.Close()
	var errResp ErrorResponse
	if code := postJSON(t, srv.URL+"/v1/select", SelectRequest{Dataset: "hotels", K: 3}, &errResp); code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", code)
	}
}

// TestServeMatchesLibrary: the HTTP layer must not perturb results —
// the response equals a direct library call bit for bit.
func TestServeMatchesLibrary(t *testing.T) {
	srv, _ := newTestServer(t)
	ds, err := fam.Hotels(120, 3)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := fam.UniformLinear(ds.Dim())
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := fam.Select(context.Background(), fam.Query{
		Data: ds, Dist: dist, K: 4, Seed: 11, SampleSize: 100, Algorithm: fam.GreedyAdd,
	}, fam.Exec{})
	if err != nil {
		t.Fatal(err)
	}
	var got SelectResponse
	code := postJSON(t, srv.URL+"/v1/select", SelectRequest{
		Dataset: "hotels", K: 4, Seed: 11, SampleSize: 100, Algorithm: "greedy-add",
	}, &got)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(got.Indices) != len(want.Indices) {
		t.Fatalf("got %v, want %v", got.Indices, want.Indices)
	}
	for i := range want.Indices {
		if got.Indices[i] != want.Indices[i] {
			t.Fatalf("got %v, want %v", got.Indices, want.Indices)
		}
	}
	if got.Metrics.ARR != want.Metrics.ARR {
		t.Fatalf("ARR %v, want %v", got.Metrics.ARR, want.Metrics.ARR)
	}
}

// TestServeBatchSelect: POST /v2/select answers a mixed panel with
// per-member slots — a k-sweep, an evaluation member, and a failing
// member that must not poison its siblings.
func TestServeBatchSelect(t *testing.T) {
	srv, engine := newTestServer(t)
	req := BatchSelectRequest{
		Queries: []QueryRequest{
			{Dataset: "hotels", K: 3, Seed: 7, SampleSize: 120},
			{Dataset: "hotels", K: 5, Seed: 7, SampleSize: 120},
			{Dataset: "hotels", K: 7, Seed: 7, SampleSize: 120},
			{Dataset: "hotels", Seed: 7, SampleSize: 120, Set: []int{0, 1, 2}},
			{Dataset: "nope", K: 3},
		},
		Exec: ExecRequest{Parallelism: 4},
	}
	var resp BatchSelectResponse
	if code := postJSON(t, srv.URL+"/v2/select", req, &resp); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if len(resp.Results) != len(req.Queries) {
		t.Fatalf("%d slots, want %d", len(resp.Results), len(req.Queries))
	}
	for i, k := range []int{3, 5, 7} {
		slot := resp.Results[i]
		if slot.Error != "" || slot.SelectResponse == nil {
			t.Fatalf("slot %d: %+v", i, slot)
		}
		if len(slot.Indices) != k {
			t.Fatalf("slot %d: %d indices, want %d", i, len(slot.Indices), k)
		}
		if slot.Telemetry == nil {
			t.Fatalf("slot %d: v2 member missing telemetry", i)
		}
	}
	evalSlot := resp.Results[3]
	if evalSlot.Error != "" || len(evalSlot.Indices) != 3 || evalSlot.Metrics.ARR < 0 {
		t.Fatalf("evaluation member: %+v", evalSlot)
	}
	bad := resp.Results[4]
	if bad.Error == "" || bad.Status != http.StatusNotFound || bad.SelectResponse != nil {
		t.Fatalf("failing member: %+v", bad)
	}

	// The k-sweep shared one preprocessing pass: one skyline index, one
	// sampled function set, one skyline-restricted instance. The fourth
	// fill is the evaluation member's full-dataset instance (evaluation
	// never restricts candidates).
	s := engine.Stats()
	if s.PrepCache.Misses != 4 {
		t.Fatalf("prep fills = %d, want exactly 4 (sky, funcs, inst|sky, inst|full)", s.PrepCache.Misses)
	}
	if s.Batches != 1 || s.BatchQueries != uint64(len(req.Queries)) {
		t.Fatalf("batch counters = %+v", s)
	}

	// Whole-batch failures: empty and oversized batches are 400s.
	var errResp ErrorResponse
	if code := postJSON(t, srv.URL+"/v2/select", BatchSelectRequest{}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("empty batch status %d", code)
	}
}

// TestServeV1ShimMatchesV2 is the golden equivalence check: for every
// algorithm, the v1 shim and a v2 batch member must return identical
// answers (they share one execution path and one result cache, so the
// second surface to ask even sees Cached=true).
func TestServeV1ShimMatchesV2(t *testing.T) {
	algos := []string{
		"greedy-shrink", "greedy-shrink-lazy", "greedy-shrink-naive",
		"brute-force", "mrr-greedy", "sky-dom", "k-hit", "greedy-add",
	}
	srv, _ := newTestServer(t)
	for _, algo := range algos {
		k := 3
		var v1 SelectResponse
		if code := postJSON(t, srv.URL+"/v1/select", SelectRequest{
			Dataset: "hotels", K: k, Seed: 9, SampleSize: 100, Algorithm: algo,
		}, &v1); code != http.StatusOK {
			t.Fatalf("%s: v1 status %d", algo, code)
		}
		a, err := fam.ParseAlgorithm(algo)
		if err != nil {
			t.Fatal(err)
		}
		var v2 BatchSelectResponse
		if code := postJSON(t, srv.URL+"/v2/select", BatchSelectRequest{
			Queries: []QueryRequest{{Dataset: "hotels", K: k, Seed: 9, SampleSize: 100, Algorithm: a}},
		}, &v2); code != http.StatusOK {
			t.Fatalf("%s: v2 status %d", algo, code)
		}
		slot := v2.Results[0]
		if slot.Error != "" {
			t.Fatalf("%s: v2 member error %q", algo, slot.Error)
		}
		if !slot.Cached {
			t.Fatalf("%s: v2 did not hit the cache entry the v1 shim filled — the surfaces do not share a result cache", algo)
		}
		if slot.Algorithm != v1.Algorithm || slot.Dataset != v1.Dataset || slot.K != v1.K {
			t.Fatalf("%s: headers differ: v1 %+v v2 %+v", algo, v1, slot)
		}
		if len(slot.Indices) != len(v1.Indices) {
			t.Fatalf("%s: v2 %v vs v1 %v", algo, slot.Indices, v1.Indices)
		}
		for i := range v1.Indices {
			if slot.Indices[i] != v1.Indices[i] || slot.Labels[i] != v1.Labels[i] {
				t.Fatalf("%s: v2 %v vs v1 %v", algo, slot.Indices, v1.Indices)
			}
		}
		if slot.Metrics.ARR != v1.Metrics.ARR || slot.ExactARR != v1.ExactARR || slot.SkylineSize != v1.SkylineSize {
			t.Fatalf("%s: metrics differ: v1 %+v v2 %+v", algo, v1.Metrics, slot.Metrics)
		}
	}
}

// TestServeUpload: POST /v1/datasets ingests CSV into the registry, and
// the uploaded dataset is immediately queryable; collisions are 409 and
// the size cap maps to 413.
func TestServeUpload(t *testing.T) {
	engine := fam.NewEngine(fam.EngineConfig{})
	t.Cleanup(engine.Close)
	h := NewHandlerConfig(engine, HandlerConfig{MaxUploadBytes: 512})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	csv := "label,price,rating\na,0.1,0.9\nb,0.9,0.1\nc,0.5,0.6\nd,0.3,0.2\n"
	post := func(url, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(url, "text/csv", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := post(srv.URL+"/v1/datasets?name=mine", csv)
	if code != http.StatusCreated {
		t.Fatalf("upload status %d: %s", code, body)
	}
	var up UploadResponse
	if err := json.Unmarshal([]byte(body), &up); err != nil {
		t.Fatal(err)
	}
	if up.Dataset.Name != "mine" || up.Dataset.N != 4 || up.Dataset.Dim != 2 {
		t.Fatalf("upload response %+v", up)
	}

	// The uploaded dataset serves queries at once.
	var sel SelectResponse
	if code := postJSON(t, srv.URL+"/v1/select", SelectRequest{Dataset: "mine", K: 2, Seed: 1, SampleSize: 50}, &sel); code != http.StatusOK {
		t.Fatalf("select on upload: %d", code)
	}
	if len(sel.Indices) != 2 {
		t.Fatalf("select on upload: %+v", sel)
	}

	// Name collision → 409.
	if code, _ := post(srv.URL+"/v1/datasets?name=mine", csv); code != http.StatusConflict {
		t.Fatalf("duplicate upload status %d, want 409", code)
	}
	// Missing name → 400.
	if code, _ := post(srv.URL+"/v1/datasets", csv); code != http.StatusBadRequest {
		t.Fatalf("nameless upload status %d, want 400", code)
	}
	// Bad distribution spec → 400.
	if code, _ := post(srv.URL+"/v1/datasets?name=x&dist=quantum", csv); code != http.StatusBadRequest {
		t.Fatalf("bad dist status %d, want 400", code)
	}
	// Over the byte cap → 413.
	big := "label,a,b\n" + strings.Repeat("p,0.5,0.5\n", 200)
	if code, _ := post(srv.URL+"/v1/datasets?name=big", big); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload status %d, want 413", code)
	}
	// CES distribution spec works.
	if code, _ := post(srv.URL+"/v1/datasets?name=ces&dist=ces:0.5", csv); code != http.StatusCreated {
		t.Fatalf("ces upload status %d, want 201", code)
	}

	var stats StatsResponse
	if code := getJSON(t, srv.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.HTTP.Uploads != 2 || stats.Engine.Datasets != 2 {
		t.Fatalf("upload counters: %+v %+v", stats.HTTP, stats.Engine)
	}
}
