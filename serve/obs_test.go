package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	fam "github.com/regretlab/fam"
	"github.com/regretlab/fam/internal/obs"
)

// newObsServer builds a test server over the hotels fixture with the
// given observability config.
func newObsServer(t *testing.T, cfg HandlerConfig) *httptest.Server {
	t.Helper()
	engine := fam.NewEngine(fam.EngineConfig{})
	t.Cleanup(engine.Close)
	ds, err := fam.Hotels(120, 3)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := fam.UniformLinear(ds.Dim())
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Register("hotels", ds, dist); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandlerConfig(engine, cfg))
	t.Cleanup(srv.Close)
	return srv
}

func batchBody() BatchSelectRequest {
	return BatchSelectRequest{
		Queries: []QueryRequest{{Dataset: "hotels", K: 3, Seed: 7, SampleSize: 80}},
		Exec:    ExecRequest{Trace: true},
	}
}

// A client-supplied trace identity survives the round trip: the
// X-Fam-Trace ID (or the traceparent trace ID) is adopted, echoed in
// both response headers, and stamps every span of the response trace.
func TestServeTraceIDRoundTrip(t *testing.T) {
	srv := newObsServer(t, HandlerConfig{})
	traceID := strings.Repeat("cd", 16)

	hreq, _ := http.NewRequest(http.MethodPost, srv.URL+"/v2/select", jsonBody(t, batchBody()))
	hreq.Header.Set(HeaderTrace, traceID)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderTrace); got != traceID {
		t.Fatalf("%s echoed %q, want %q", HeaderTrace, got, traceID)
	}
	tp := resp.Header.Get(HeaderTraceparent)
	if gotID, _, ok := obs.ParseTraceparent(tp); !ok || gotID != traceID {
		t.Fatalf("response traceparent %q does not carry trace %s", tp, traceID)
	}
	var out BatchSelectResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	tr := out.Results[0].Telemetry.Trace
	if tr == nil || tr.TraceID != traceID {
		t.Fatalf("member trace = %+v, want subtree under trace %s", tr, traceID)
	}
	if tr.Name != "engine.select" {
		t.Fatalf("member trace root = %q, want engine.select", tr.Name)
	}

	// W3C form: the traceparent trace ID is adopted and the local tree
	// hangs under the remote caller's span.
	remoteID := strings.Repeat("12", 16)
	hreq2, _ := http.NewRequest(http.MethodPost, srv.URL+"/v2/select", jsonBody(t, batchBody()))
	hreq2.Header.Set(HeaderTraceparent, obs.FormatTraceparent(remoteID, "00000000000000aa"))
	resp2, err := http.DefaultClient.Do(hreq2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(HeaderTrace); got != remoteID {
		t.Fatalf("traceparent trace ID not adopted: %s = %q, want %q", HeaderTrace, got, remoteID)
	}

	// No headers, exec.trace=true: the request is armed locally and the
	// assigned (fresh, valid) ID is announced.
	resp3, err := http.Post(srv.URL+"/v2/select", "application/json", jsonBody(t, batchBody()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	assigned := resp3.Header.Get(HeaderTrace)
	if !obs.ValidTraceID(assigned) {
		t.Fatalf("body-armed trace announced invalid ID %q", assigned)
	}
	var out3 BatchSelectResponse
	if err := json.NewDecoder(resp3.Body).Decode(&out3); err != nil {
		t.Fatal(err)
	}
	if tr := out3.Results[0].Telemetry.Trace; tr == nil || tr.TraceID != assigned {
		t.Fatalf("body-armed member trace = %+v, want trace %s", tr, assigned)
	}

	// Without exec.trace, telemetry carries no span tree even when the
	// request was traced by header.
	plain := batchBody()
	plain.Exec.Trace = false
	hreq4, _ := http.NewRequest(http.MethodPost, srv.URL+"/v2/select", jsonBody(t, plain))
	hreq4.Header.Set(HeaderTrace, traceID)
	resp4, err := http.DefaultClient.Do(hreq4)
	if err != nil {
		t.Fatal(err)
	}
	defer resp4.Body.Close()
	var out4 BatchSelectResponse
	if err := json.NewDecoder(resp4.Body).Decode(&out4); err != nil {
		t.Fatal(err)
	}
	if out4.Results[0].Telemetry.Trace != nil {
		t.Fatal("telemetry carries a trace without exec.trace")
	}
}

// With a slow-query threshold configured, every query request is
// traced and any that exceeds the threshold is sinked to the JSONL
// trace log — under the same trace ID the response announced — and
// counted in /metrics.
func TestServeSlowQueryCapture(t *testing.T) {
	var sink bytes.Buffer
	srv := newObsServer(t, HandlerConfig{TraceLog: &sink, SlowQuery: time.Nanosecond})
	traceID := strings.Repeat("ef", 16)

	hreq, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/select",
		jsonBody(t, SelectRequest{Dataset: "hotels", K: 3, Seed: 7, SampleSize: 80}))
	hreq.Header.Set(HeaderTrace, traceID)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	var entry struct {
		TraceID   string `json:"trace_id"`
		RequestID string `json:"request_id"`
		Endpoint  string `json:"endpoint"`
		Status    int    `json:"status"`
		Slow      bool   `json:"slow"`
		Spans     *struct {
			Name     string `json:"name"`
			Children []any  `json:"children"`
		} `json:"spans"`
	}
	line, err := bufio.NewReader(bytes.NewReader(sink.Bytes())).ReadBytes('\n')
	if err != nil {
		t.Fatalf("no trace-log line captured: %v", err)
	}
	if err := json.Unmarshal(line, &entry); err != nil {
		t.Fatalf("trace-log line is not JSON: %v\n%s", err, line)
	}
	if entry.TraceID != traceID || !entry.Slow || entry.Endpoint != "POST /v1/select" || entry.Status != http.StatusOK {
		t.Fatalf("trace-log entry = %+v", entry)
	}
	if entry.RequestID == "" {
		t.Fatal("trace-log entry has no request_id")
	}
	if entry.Spans == nil || entry.Spans.Name != "http.request" || len(entry.Spans.Children) == 0 {
		t.Fatalf("trace-log span tree = %+v, want http.request root with children", entry.Spans)
	}

	// The non-query /metrics scrape itself is never slow-captured, and
	// it reports the slow query plus the new build/runtime families.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"fam_slow_queries_total 1",
		"fam_build_info{go_version=",
		"fam_go_goroutines ",
		"fam_go_heap_alloc_bytes ",
		"fam_go_gc_pause_seconds_total ",
		"fam_trace_spans_total ",
	} {
		if !strings.Contains(body.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Count(sink.String(), "\n") != 1 {
		t.Fatalf("trace log has %d lines, want 1 (the slow query only)", strings.Count(sink.String(), "\n"))
	}
}

// Every served request writes one structured log line, and a failed v2
// request's envelope carries the same request_id the log line does.
func TestServeSlogRequestLine(t *testing.T) {
	var logBuf bytes.Buffer
	srv := newObsServer(t, HandlerConfig{Log: slog.New(slog.NewJSONHandler(&logBuf, nil))})

	var ok BatchSelectResponse
	if code := postJSON(t, srv.URL+"/v2/select", batchBody(), &ok); code != http.StatusOK {
		t.Fatalf("select status %d", code)
	}
	resp, err := http.Post(srv.URL+"/v2/select", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var envelope ErrorV2
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Code != CodeBadRequest || envelope.RequestID == "" {
		t.Fatalf("v2 error envelope = %+v, want bad_request with request_id", envelope)
	}

	type reqLine struct {
		Msg       string  `json:"msg"`
		RequestID string  `json:"request_id"`
		TraceID   string  `json:"trace_id"`
		Endpoint  string  `json:"endpoint"`
		Status    int     `json:"status"`
		DurMS     float64 `json:"dur_ms"`
	}
	var lines []reqLine
	sc := bufio.NewScanner(bytes.NewReader(logBuf.Bytes()))
	for sc.Scan() {
		var l reqLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, sc.Text())
		}
		if l.Msg == "request" {
			lines = append(lines, l)
		}
	}
	if len(lines) != 2 {
		t.Fatalf("logged %d request lines, want 2:\n%s", len(lines), logBuf.String())
	}
	good, bad := lines[0], lines[1]
	if good.Endpoint != "POST /v2/select" || good.Status != http.StatusOK || good.RequestID == "" {
		t.Fatalf("good request line = %+v", good)
	}
	if bad.Status != http.StatusBadRequest || bad.RequestID != envelope.RequestID {
		t.Fatalf("bad request line = %+v, envelope request_id %q", bad, envelope.RequestID)
	}
	if good.RequestID == bad.RequestID {
		t.Fatal("request IDs are not unique per request")
	}
}
