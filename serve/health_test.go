package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	fam "github.com/regretlab/fam"
)

func mustMarshal(t *testing.T, body any) io.Reader {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf)
}

func TestHealthzEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)

	var h HealthzResponse
	if code := getJSON(t, srv.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if !h.OK || h.Datasets != 1 || h.WindowSeconds != shedWindowSeconds {
		t.Fatalf("cold healthz = %+v", h)
	}
	if h.ShedRate != 0 || h.ResultHitRate != 0 {
		t.Fatalf("cold healthz has nonzero rates: %+v", h)
	}

	// One miss then one hit: the hit rate becomes 0.5.
	req := SelectRequest{Dataset: "hotels", K: 5, Seed: 7, SampleSize: 120}
	for i := 0; i < 2; i++ {
		if code := postJSON(t, srv.URL+"/v1/select", req, nil); code != http.StatusOK {
			t.Fatalf("select %d status %d", i, code)
		}
	}
	if code := getJSON(t, srv.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if h.ResultHitRate != 0.5 {
		t.Fatalf("result hit rate %g, want 0.5", h.ResultHitRate)
	}
}

func TestShedWindowRate(t *testing.T) {
	var w shedWindow
	base := time.Unix(1000, 0)
	if got := w.rate(base); got != 0 {
		t.Fatalf("empty window rate %g", got)
	}
	w.note(base, false)
	w.note(base, true)
	w.note(base.Add(time.Second), true)
	if got := w.rate(base.Add(time.Second)); got != 2.0/3.0 {
		t.Fatalf("rate %g, want 2/3", got)
	}
	// Past the window, the old buckets age out entirely.
	later := base.Add((shedWindowSeconds + 2) * time.Second)
	if got := w.rate(later); got != 0 {
		t.Fatalf("aged window rate %g, want 0", got)
	}
	// A bucket slot reused by a new second forgets its old counts.
	w.note(later, false)
	if got := w.rate(later); got != 0 {
		t.Fatalf("post-reuse rate %g, want 0", got)
	}
}

func TestInstanceKeyEcho(t *testing.T) {
	srv, engine := newTestServer(t)

	req := SelectRequest{Dataset: "hotels", K: 5, Seed: 7, SampleSize: 120}
	buf := mustMarshal(t, req)
	resp, err := http.Post(srv.URL+"/v1/select", "application/json", buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	key := resp.Header.Get(HeaderInstanceKey)
	if key == "" {
		t.Fatal("select response missing instance key header")
	}
	// The echoed key matches the engine's normalized instance identity.
	member := QueryRequest{Dataset: "hotels", K: 5, Seed: 7, SampleSize: 120}
	if want := engine.InstanceKey(member.toQuery()); key != want {
		t.Fatalf("echoed key %q, want %q", key, want)
	}

	// A batch over two instances echoes both keys, comma-joined.
	batch := BatchSelectRequest{Queries: []QueryRequest{
		{Dataset: "hotels", K: 3, Seed: 7, SampleSize: 120},
		{Dataset: "hotels", K: 4, Seed: 9, SampleSize: 120},
		{Dataset: "hotels", K: 5, Seed: 7, SampleSize: 120},
	}}
	resp, err = http.Post(srv.URL+"/v2/select", "application/json", mustMarshal(t, batch))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	keys := resp.Header.Get(HeaderInstanceKey)
	want := engine.InstanceKey(batch.Queries[0].toQuery()) + "," + engine.InstanceKey(batch.Queries[1].toQuery())
	if keys != want {
		t.Fatalf("batch echoed %q, want %q", keys, want)
	}

	// Unknown datasets produce no header (and the request fails).
	resp, err = http.Post(srv.URL+"/v1/select", "application/json",
		mustMarshal(t, SelectRequest{Dataset: "missing", K: 5}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing-dataset status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderInstanceKey); got != "" {
		t.Fatalf("missing-dataset response echoed key %q", got)
	}
}

func TestEngineInstanceKeyNormalization(t *testing.T) {
	engine := fam.NewEngine(fam.EngineConfig{})
	defer engine.Close()
	ds, err := fam.Hotels(120, 3)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := fam.UniformLinear(ds.Dim())
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Register("hotels", ds, dist); err != nil {
		t.Fatal(err)
	}
	// Different K, same preprocessing instance: the key must agree, or
	// affinity routing would scatter one warm instance across replicas.
	a := QueryRequest{Dataset: "hotels", K: 3, Seed: 7, SampleSize: 120}
	b := QueryRequest{Dataset: "hotels", K: 8, Seed: 7, SampleSize: 120}
	if ka, kb := engine.InstanceKey(a.toQuery()), engine.InstanceKey(b.toQuery()); ka == "" || ka != kb {
		t.Fatalf("same-instance keys differ: %q vs %q", ka, kb)
	}
	// A different seed is a different instance.
	c := QueryRequest{Dataset: "hotels", K: 3, Seed: 8, SampleSize: 120}
	if engine.InstanceKey(a.toQuery()) == engine.InstanceKey(c.toQuery()) {
		t.Fatal("different seeds share an instance key")
	}
	// Unknown dataset resolves to no key.
	d := QueryRequest{Dataset: "missing", K: 3}
	if got := engine.InstanceKey(d.toQuery()); got != "" {
		t.Fatalf("unknown dataset key %q, want empty", got)
	}
}
