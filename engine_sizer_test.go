package fam

import (
	"context"
	"testing"

	"github.com/regretlab/fam/internal/core"
	"github.com/regretlab/fam/internal/utility"
)

// TestPrepSizeExact pins the prep-cache sizers to the real artifact
// sizes: the matrix-dominated instance footprint from
// core.Instance.MemoryFootprint and per-function payloads from
// utility.Footprint, replacing the old static 64 B/func and 8 B/cell
// estimates.
func TestPrepSizeExact(t *testing.T) {
	const sliceHeader = 24

	// Skyline index: exact element bytes.
	if got, want := prepSize(make([]int, 100)), int64(sliceHeader+100*8); got != want {
		t.Fatalf("skyline size = %d, want %d", got, want)
	}

	// Function sets: real weight-vector payloads, not 64 B flat.
	funcs := make([]UtilityFunc, 10)
	for i := range funcs {
		funcs[i] = utility.Linear{W: make([]float64, 3)}
	}
	perFunc := int64(sliceHeader + 3*8) // Footprint of a 3-d Linear
	wantFuncs := int64(sliceHeader) + 10*16 + 10*perFunc
	if got := prepSize(funcs); got != wantFuncs {
		t.Fatalf("funcs size = %d, want %d", got, wantFuncs)
	}
	if utility.Footprint(utility.Linear{W: make([]float64, 1000)}) != sliceHeader+8000 {
		t.Fatal("Linear footprint is not exact")
	}

	// Built instance: the N×n matrix plus the satisfaction/best-point
	// indexes, exactly.
	points := [][]float64{{1, 0}, {0, 1}, {0.5, 0.5}, {0.2, 0.9}}
	in, err := core.NewInstance(points, []utility.Func{
		utility.Linear{W: []float64{0.3, 0.7}},
		utility.Linear{W: []float64{0.9, 0.1}},
	}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, N := int64(4), int64(2)
	wantIn := sliceHeader + N*n*8 + // cached matrix (flat backing array)
		sliceHeader + N*8 + // satD
		sliceHeader + N*4 // bestD
	if got := in.MemoryFootprint(); got != wantIn {
		t.Fatalf("instance footprint = %d, want %d", got, wantIn)
	}
	p := &prepared{
		candidates: []int{0, 1, 2, 3},
		funcs:      []UtilityFunc{utility.Linear{W: []float64{0.3, 0.7}}, utility.Linear{W: []float64{0.9, 0.1}}},
		in:         in,
	}
	wantPrep := int64(sliceHeader*4) + 4*8 + 2*16 + wantIn
	if got := prepSize(p); got != wantPrep {
		t.Fatalf("prepared size = %d, want %d", got, wantPrep)
	}

	// An engine-served query accounts real bytes in the stats.
	e := newTestEngine(t, engineFixtures(t))
	if _, _, err := e.Select(context.Background(), Query{Dataset: "hotels", K: 3, SampleSize: 50}, Exec{}); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.PrepCache.Bytes == 0 {
		t.Fatal("prep cache reports zero bytes after a cold select")
	}
}
