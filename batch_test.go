package fam

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestEngineCacheSharedAcrossExec is the acceptance test of the
// Query/Exec split: the same Query at different Parallelism settings
// must share one result-cache entry — exactly one fill, with the second
// answer served from the cache (Cached: true) even though its Exec
// differs.
func TestEngineCacheSharedAcrossExec(t *testing.T) {
	e := newTestEngine(t, engineFixtures(t))
	ctx := context.Background()
	q := Query{Dataset: "hotels", K: 5, Seed: 9, SampleSize: 120}

	first, _, err := e.Select(ctx, q, Exec{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("cold query reported Cached")
	}
	second, _, err := e.Select(ctx, q, Exec{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("same Query at Parallelism 8 did not hit the entry filled at Parallelism 1")
	}
	for i := range first.Indices {
		if second.Indices[i] != first.Indices[i] {
			t.Fatalf("cached answer differs: %v vs %v", second.Indices, first.Indices)
		}
	}
	if s := e.Stats(); s.ResultCache.Misses != 1 || s.ResultCache.Hits != 1 {
		t.Fatalf("result cache fills = %d hits = %d, want exactly 1 and 1", s.ResultCache.Misses, s.ResultCache.Hits)
	}

	// LazyBatch is execution policy too: a lazy query keyed once, shared
	// at any batch size.
	lazy := Query{Dataset: "hotels", K: 5, Seed: 9, SampleSize: 120, Algorithm: GreedyShrinkLazy}
	if _, _, err := e.Select(ctx, lazy, Exec{LazyBatch: 1}); err != nil {
		t.Fatal(err)
	}
	warm, _, err := e.Select(ctx, lazy, Exec{LazyBatch: 16, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("LazyBatch leaked into the result-cache key")
	}

	// The legacy shim funnels into the same cache: a v1-style call with
	// yet another Parallelism still hits.
	viaShim, err := e.SelectWithOptions(ctx, "hotels", SelectOptions{K: 5, Seed: 9, SampleSize: 120, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !viaShim.Cached {
		t.Fatal("legacy shim bypassed the shared result cache")
	}
}

// TestEngineSelectBatchMatchesLoop: a batch answer must be bit-identical
// to issuing its members one at a time — SelectBatch is amortization,
// never approximation. Run under -race in CI: the member fan-out and
// the singleflight preprocessing sharing are exactly the concurrency
// this guards.
func TestEngineSelectBatchMatchesLoop(t *testing.T) {
	fixtures := engineFixtures(t)
	ctx := context.Background()

	// A mixed panel: k-sweep on hotels, an algorithm panel, a DP2D member
	// on the 2-d dataset, an evaluation member, and two failing members
	// (unknown dataset, bad K) to pin the per-slot error contract.
	queries := []Query{
		{Dataset: "hotels", K: 2, Seed: 9, SampleSize: 120},
		{Dataset: "hotels", K: 4, Seed: 9, SampleSize: 120},
		{Dataset: "hotels", K: 6, Seed: 9, SampleSize: 120},
		{Dataset: "hotels", K: 8, Seed: 9, SampleSize: 120},
		{Dataset: "hotels", K: 4, Seed: 9, SampleSize: 120, Algorithm: GreedyAdd},
		{Dataset: "hotels", K: 4, Seed: 9, SampleSize: 120, Algorithm: KHit},
		{Dataset: "grid2d", K: 3, Seed: 9, SampleSize: 120, Algorithm: DP2D},
		{Dataset: "tiny", Seed: 9, SampleSize: 120, ExplicitSet: []int{0, 3, 5}},
		{Dataset: "nope", K: 3},
		{Dataset: "hotels", K: 0},
	}

	// Ground truth: a fresh engine answering the members one at a time.
	loopEngine := newTestEngine(t, fixtures)
	wantRes := make([]*Result, len(queries))
	wantErr := make([]error, len(queries))
	for i, q := range queries {
		if q.ExplicitSet != nil {
			m, err := loopEngine.Evaluate(ctx, q, Exec{})
			if err != nil {
				wantErr[i] = err
				continue
			}
			wantRes[i] = &Result{Metrics: m}
			continue
		}
		res, _, err := loopEngine.Select(ctx, q, Exec{})
		wantRes[i], wantErr[i] = res, err
	}

	for _, par := range []int{0, 1, 4} {
		batchEngine := newTestEngine(t, fixtures)
		slots, err := batchEngine.SelectBatch(ctx, queries, Exec{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if len(slots) != len(queries) {
			t.Fatalf("par=%d: %d slots, want %d", par, len(slots), len(queries))
		}
		for i, slot := range slots {
			label := fmt.Sprintf("par=%d slot=%d", par, i)
			if wantErr[i] != nil {
				if slot.Err == nil || slot.Err.Error() != wantErr[i].Error() {
					t.Fatalf("%s: err = %v, want %v", label, slot.Err, wantErr[i])
				}
				continue
			}
			if slot.Err != nil {
				t.Fatalf("%s: unexpected error %v", label, slot.Err)
			}
			if queries[i].ExplicitSet != nil {
				if slot.Result.Metrics.ARR != wantRes[i].Metrics.ARR {
					t.Fatalf("%s: eval ARR %v, want %v", label, slot.Result.Metrics.ARR, wantRes[i].Metrics.ARR)
				}
				continue
			}
			if len(slot.Result.Indices) != len(wantRes[i].Indices) {
				t.Fatalf("%s: %v, want %v", label, slot.Result.Indices, wantRes[i].Indices)
			}
			for j := range wantRes[i].Indices {
				if slot.Result.Indices[j] != wantRes[i].Indices[j] {
					t.Fatalf("%s: %v, want %v", label, slot.Result.Indices, wantRes[i].Indices)
				}
			}
			if slot.Result.Metrics.ARR != wantRes[i].Metrics.ARR ||
				slot.Result.ExactARR != wantRes[i].ExactARR ||
				slot.Result.SkylineSize != wantRes[i].SkylineSize {
				t.Fatalf("%s: metrics differ from loop", label)
			}
		}
		// The loop and the batch do the same preprocessing work: the
		// batch coalesces concurrent members onto single fills.
		if got, want := batchEngine.Stats().PrepCache.Misses, loopEngine.Stats().PrepCache.Misses; got != want {
			t.Fatalf("par=%d: batch did %d prep fills, loop did %d", par, got, want)
		}
	}
}

// TestEngineSelectBatchValidation pins the whole-batch failure modes.
func TestEngineSelectBatchValidation(t *testing.T) {
	e := newTestEngine(t, engineFixtures(t))
	ctx := context.Background()
	if _, err := e.SelectBatch(ctx, nil, Exec{}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("empty batch: %v", err)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := e.SelectBatch(canceled, []Query{{Dataset: "hotels", K: 3}}, Exec{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled batch: %v", err)
	}
	e.Close()
	if _, err := e.SelectBatch(ctx, []Query{{Dataset: "hotels", K: 3}}, Exec{}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("closed engine: %v", err)
	}
}

// TestEngineQueryBinding: Engine queries must name a registered dataset
// and must not carry inline data; one-shot queries must carry data.
func TestEngineQueryBinding(t *testing.T) {
	fixtures := engineFixtures(t)
	e := newTestEngine(t, fixtures)
	ctx := context.Background()

	if _, _, err := e.Select(ctx, Query{K: 3}, Exec{}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("nameless engine query: %v", err)
	}
	if _, _, err := e.Select(ctx, Query{Dataset: "hotels", Data: fixtures[0].ds, Dist: fixtures[0].dist, K: 3}, Exec{}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("inline data on engine query: %v", err)
	}
	if _, _, err := e.Select(ctx, Query{Dataset: "nope", K: 3}, Exec{}); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset: %v", err)
	}
	if _, err := e.Evaluate(ctx, Query{Dataset: "hotels", SampleSize: 50}, Exec{}); !errors.Is(err, ErrInvalidSet) {
		t.Fatalf("evaluate without set: %v", err)
	}
	if _, _, err := Select(ctx, Query{Dataset: "hotels", K: 3}, Exec{}); !errors.Is(err, ErrNilArgument) {
		t.Fatalf("one-shot query without data: %v", err)
	}
}
