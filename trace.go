package fam

import (
	"context"
	"time"

	"github.com/regretlab/fam/internal/obs"
)

// TraceSpan is one node of a query's finished span tree: a named, timed
// operation with its attributes, timed events, and children. It is the
// public mirror of the internal tracer's node type, attached to
// Telemetry.Trace when a query runs traced.
//
// Span structure — names, nesting, counts, attributes — is deterministic
// for a fixed (Query, Exec): golden tests pin it via Shape. Only the
// timings (Start, Dur, event durations) and the IDs vary between runs.
type TraceSpan struct {
	// TraceID identifies the whole request's trace (32 lowercase hex,
	// W3C-compatible); SpanID this span (16 hex); Parent the enclosing
	// span ("" for a root without a remote caller).
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id"`
	Parent  string `json:"parent_span_id,omitempty"`
	// Name is the operation ("engine.select", "prepare", "solve",
	// "shrink", "round", ...; see the README span catalog).
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
	// Attrs annotate the span with values that are pure functions of the
	// query (key, strategy, n, k, eval counts, hit/shared/dedup flags).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Events are timed occurrences inside the span — one "pool.grant"
	// per helper ticket granted, with its enqueue-to-grant wait. Event
	// counts depend on scheduling timing and are excluded from Shape.
	Events   []TraceEvent `json:"events,omitempty"`
	Children []*TraceSpan `json:"children,omitempty"`
}

// TraceEvent is one timed event inside a TraceSpan.
type TraceEvent struct {
	Name string        `json:"name"`
	Dur  time.Duration `json:"dur_ns"`
}

// traceOf extracts the finished subtree rooted at span as the public
// mirror (nil when tracing is off). Callers End the span first; the
// enclosing serve spans may still be open.
func traceOf(span *obs.Span) *TraceSpan {
	if span == nil {
		return nil
	}
	return traceSpanFromNode(span.Collector().Node(span.SpanID))
}

// traceSpanFromNode converts the internal tree into the public mirror.
func traceSpanFromNode(n *obs.Node) *TraceSpan {
	if n == nil {
		return nil
	}
	sp := n.Span
	out := &TraceSpan{
		TraceID: sp.TraceID,
		SpanID:  sp.SpanID,
		Parent:  sp.Parent,
		Name:    sp.Name,
		Start:   sp.Start,
		Dur:     sp.Dur,
	}
	if len(sp.Attrs) > 0 {
		out.Attrs = make(map[string]string, len(sp.Attrs))
		for _, a := range sp.Attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, ev := range sp.Events() {
		out.Events = append(out.Events, TraceEvent{Name: ev.Name, Dur: ev.Dur})
	}
	for _, ch := range n.Children {
		out.Children = append(out.Children, traceSpanFromNode(ch))
	}
	return out
}

// Shape renders the deterministic structure of the span subtree: one
// indented line per span with its name and attrs, children ordered by
// their own rendered shape. Durations, IDs, and events are excluded, so
// for a fixed (Query, Exec) the string is identical run after run and
// at any worker count — the form golden tests compare.
func (s *TraceSpan) Shape() string {
	if s == nil {
		return ""
	}
	return s.node().Shape()
}

// node rebuilds an obs.Node view over the mirror tree so Shape shares
// the internal renderer (one definition of "deterministic structure").
func (s *TraceSpan) node() *obs.Node {
	sp := &obs.Span{
		TraceID: s.TraceID,
		SpanID:  s.SpanID,
		Parent:  s.Parent,
		Name:    s.Name,
		Start:   s.Start,
		Dur:     s.Dur,
	}
	for _, k := range sortedAttrKeys(s.Attrs) {
		sp.SetAttr(k, s.Attrs[k])
	}
	n := &obs.Node{Span: sp}
	for _, ch := range s.Children {
		n.Children = append(n.Children, ch.node())
	}
	return n
}

func sortedAttrKeys(m map[string]string) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort; attr maps are tiny
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// TraceContext arms a context for tracing: a query run under the
// returned context collects a span tree and attaches it to
// Telemetry.Trace. traceID, when a valid 32-lowercase-hex W3C trace ID,
// is adopted (continuing an upstream trace); otherwise a fresh random
// ID is drawn. The serve layer arms requests itself from the
// X-Fam-Trace / traceparent headers; library callers use TraceContext
// to trace direct Engine or one-shot calls.
func TraceContext(ctx context.Context, traceID string) context.Context {
	return obs.NewCollectorContext(ctx, obs.NewCollector(traceID))
}

// TraceIDFromContext returns the trace ID the context is armed with
// ("" when tracing is off).
func TraceIDFromContext(ctx context.Context) string {
	return obs.CollectorFromContext(ctx).TraceID()
}

// planGroupKeyCtx marks a batch member's context with its plan-group
// key, so the representative's prep-fill spans can carry the group
// attribute (satellite: batch-planner tracing).
type planGroupKeyCtx struct{}

func withPlanGroupKey(ctx context.Context, key string) context.Context {
	return context.WithValue(ctx, planGroupKeyCtx{}, key)
}

func planGroupKeyFrom(ctx context.Context) string {
	k, _ := ctx.Value(planGroupKeyCtx{}).(string)
	return k
}
