package fam

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/regretlab/fam/internal/obs"
)

// BatchResult is one member slot of a SelectBatch answer. Exactly one of
// (Result, Err) is meaningful: a failed member carries its error without
// poisoning its siblings.
type BatchResult struct {
	// Result and Telemetry answer the member query (Result.Cached marks
	// result-cache hits, as in Select). For evaluation members
	// (ExplicitSet set) Result carries the evaluated set and its Metrics.
	Result    *Result
	Telemetry *Telemetry
	// Err is the member's failure, nil on success. Match it with
	// errors.Is against the usual sentinels (ErrBadOptions,
	// ErrUnknownDataset, ErrInvalidSet, ErrShed, …).
	Err error
}

// SelectBatch answers a panel of semantic queries under one execution
// policy: a k-sweep, an algorithm comparison, or any mix of selection
// and evaluation members (members may even target different registered
// datasets).
//
// The batch is planned before it runs:
//
//  1. Members with identical Query.Fingerprint()s are deduplicated —
//     one leader per fingerprint runs, the duplicates copy its slot
//     (selection duplicates marked Cached, exactly as a sequential loop
//     would answer them from the result cache). The dedup is a planning
//     decision, not a race: it holds at any timing, unlike singleflight
//     coalescing. EngineStats.PlannedDedups counts the copies.
//  2. The remaining members are grouped by instance key — the (dataset,
//     skyline-eligibility, seed, sample size, exactness, cache budget)
//     tuple that determines which preprocessing artifacts they share.
//     EngineStats.PlanGroups counts the groups.
//  3. Each group runs its representative first, filling the shared
//     preprocessing (skyline index, sampled functions, built instance),
//     then releases the rest of the group concurrently onto the warm
//     cache. Groups run concurrently with each other, bounded by
//     Exec.Parallelism when set. Grouping is a planning heuristic, not
//     a guarantee: a member whose K reaches the skyline size falls back
//     to the full-candidate instance at execution time, so such mixed
//     groups may still coalesce a second instance build on the
//     singleflight path — correct either way, just less planned.
//
// Every member gets its own answer slot: one bad member yields an Err in
// its slot while the rest of the batch completes. The returned slice
// always has len(queries) entries, in order. The call-level error is
// reserved for whole-batch failures (a closed Engine, an empty batch, a
// canceled context, batch-level admission).
//
// Each member is answered exactly as Engine.Select/Engine.Evaluate would
// answer it — same result cache, same Fingerprint keys, same
// bit-identity guarantees — so a batch is semantically equivalent to a
// loop, just planned. Member Telemetry reports QueueWait as the member's
// own pool grant waits plus the time it spent waiting for its plan slot.
func (e *Engine) SelectBatch(ctx context.Context, queries []Query, exec Exec) ([]BatchResult, error) {
	if e.closed.Load() {
		return nil, ErrEngineClosed
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadOptions)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, span := obs.Start(ctx, "engine.batch")
	span.SetAttrInt("members", len(queries))
	defer span.End()
	// Batch-level admission: a batch whose deadline has already passed
	// (or that arrives over its queue bound) is shed whole — cheaper for
	// the caller to handle than len(queries) identical member sheds.
	if err := e.admitTraced(ctx, exec); err != nil {
		return nil, err
	}
	// Counter-update order is part of the EngineStats snapshot contract:
	// member queries are added before the batch itself (every batch has
	// at least one member, so BatchQueries ≥ Batches holds at every
	// instant), and the planner's PlannedDedups/PlanGroups — always
	// bounded by the member count — are added below, after BatchQueries.
	// Stats() loads the counters in the matching order, so its snapshots
	// can never show the inequalities torn mid-batch.
	e.batchQueries.Add(uint64(len(queries)))
	e.batches.Add(1)

	// MaxQueue admission was consumed by the batch-level check above:
	// the members of an admitted batch fan out together, so their own
	// helper tickets would count against the bound and an admitted batch
	// would shed itself under zero external load — something a
	// sequential loop (depth ~0 at each admit) never does. Deadline
	// admission stays per member: a loop re-checks it before every
	// Select too, so shedding not-yet-started members whose deadline
	// passed is exactly loop-equivalent.
	memberExec := exec
	memberExec.MaxQueue = 0

	_, planSpan := obs.Start(ctx, "plan")
	pl := e.plan(queries)
	planSpan.SetAttrInt("groups", len(pl.groups))
	planSpan.SetAttrInt("dedups", len(pl.copies))
	planSpan.End()
	e.planGroups.Add(uint64(len(pl.groups)))
	e.plannedDedups.Add(uint64(len(pl.copies)))

	out := make([]BatchResult, len(queries))
	// Member fan-out width: the Exec's Parallelism when set (the batch is
	// one workload — its worker bound covers the members too), otherwise
	// every member at once; the shared pool bounds the actual helper
	// goroutines either way.
	width := exec.Parallelism
	if width <= 0 || width > len(queries) {
		width = len(queries)
	}
	sem := make(chan struct{}, width)
	start := time.Now()
	runMember := func(i int, groupKey string) {
		sem <- struct{}{}
		defer func() { <-sem }()
		wait := time.Since(start)
		// Every member span shares the batch's collector — and so its
		// TraceID. The representative carries the plan-group key in its
		// context, so the prep fills it triggers are attributable to the
		// group (their spans gain a group attr via fillSpan).
		mctx, mspan := obs.Start(ctx, "member")
		mspan.SetAttrInt("index", i)
		if groupKey != "" {
			mctx = withPlanGroupKey(mctx, groupKey)
		}
		out[i] = e.member(mctx, queries[i], memberExec)
		mspan.End()
		if out[i].Telemetry != nil {
			// The member's Telemetry already carries its own pool grant
			// waits (attributed per query on the Select/Evaluate path);
			// the plan-slot wait behind the representative and the width
			// bound is added on top.
			out[i].Telemetry.QueueWait += wait
		}
	}
	var wg sync.WaitGroup
	for _, g := range pl.groups {
		wg.Add(1)
		go func(g planGroup) {
			defer wg.Done()
			// The representative runs alone first: it fills the group's
			// shared preprocessing exactly once, so the released members
			// find a warm cache instead of a singleflight door.
			runMember(g.rep, g.key)
			var members sync.WaitGroup
			for _, i := range g.rest {
				members.Add(1)
				go func(i int) {
					defer members.Done()
					runMember(i, "")
				}(i)
			}
			members.Wait()
		}(g)
	}
	wg.Wait()
	// Planned duplicates copy their leader's slot after the fan-out —
	// bit-identical to re-asking, without re-asking. Each copy is marked
	// in the trace: a member span that did no work beyond the copy.
	for dup, leader := range pl.copies {
		_, dspan := obs.Start(ctx, "member")
		dspan.SetAttrInt("index", dup)
		dspan.SetAttrBool("dedup", true)
		out[dup] = copySlot(out[leader], queries[dup].ExplicitSet == nil)
		dspan.End()
	}
	return out, nil
}

// plan is the batch execution plan: fingerprint-deduplicated members
// arranged into instance-key groups.
type plan struct {
	groups []planGroup
	// copies maps a duplicate member index to the leader member whose
	// slot it copies.
	copies map[int]int
}

// planGroup is one set of members sharing preprocessing: rep runs
// first, rest follow on the warm cache. key is the preprocessing-
// sharing key the group was formed under, carried into the
// representative's context so its prep-fill spans are attributable.
type planGroup struct {
	rep  int
	rest []int
	key  string
}

// plan dedupes and groups a batch. Grouping is best-effort: a member
// whose query cannot be resolved or normalized gets its own group and
// reports its real error from the member path — planning never
// invents new failure modes.
func (e *Engine) plan(queries []Query) plan {
	leaders := make(map[string]int, len(queries))
	copies := make(map[int]int)
	groupIdx := make(map[string]int)
	var groups []planGroup
	for i, q := range queries {
		if fp, err := q.Fingerprint(); err == nil {
			if leader, ok := leaders[fp]; ok {
				copies[i] = leader
				continue
			}
			leaders[fp] = i
		}
		key := e.planKey(q, i)
		if gi, ok := groupIdx[key]; ok {
			groups[gi].rest = append(groups[gi].rest, i)
		} else {
			groupIdx[key] = len(groups)
			groups = append(groups, planGroup{rep: i, key: key})
		}
	}
	return plan{groups: groups, copies: copies}
}

// planKey derives the member's preprocessing-sharing key: the fields of
// the instance cache key that are known before anything is built. The
// skyline-eligibility flag stands in for the real instance class, which
// also depends on the (not yet computed) skyline size vs K — members on
// the wrong side of that comparison share preprocessing through
// singleflight instead of the plan. Unresolvable members key uniquely
// (by index) so they fail in their own slot without serializing behind
// a group.
func (e *Engine) planKey(q Query, i int) string {
	if key := e.InstanceKey(q); key != "" {
		return key
	}
	return fmt.Sprintf("solo|%d", i)
}

// InstanceKey returns the preprocessing-sharing identity of q: the
// (dataset, skyline-eligibility, seed, sample size, exactness, cache
// budget) tuple that determines which cached preprocessing artifacts —
// skyline index, sampled functions, built instance — the query reuses.
// It is the batch planner's grouping key, and the key the serve layer
// echoes as X-Fam-Instance-Key so a cluster router can learn which
// replica's prep cache is warm for which queries. Equal Fingerprints
// imply equal InstanceKeys, never the reverse: a k-sweep over one
// dataset shares a single instance key across distinct fingerprints.
// Returns "" for a query that does not resolve against the registry.
func (e *Engine) InstanceKey(q Query) string {
	reg, err := e.resolve(q)
	if err != nil {
		return ""
	}
	norm, err := deriveQuery(reg.ds, reg.dist, q, q.ExplicitSet == nil)
	if err != nil {
		return ""
	}
	key := fmt.Sprintf("%s|sky=%t|seed=%d|N=%d|exact=%t|budget=%d",
		reg.name, norm.useSkyline, q.Seed, norm.sampleSize, norm.discrete != nil,
		effectiveBudget(q.CacheBudget))
	// Like the Fingerprint, opt-in knobs that change which instance is
	// built append conditionally so established keys stay byte-stable.
	if norm.useCoreset {
		key += fmt.Sprintf("|cs=%g", norm.coresetEps)
	}
	if q.Float32 {
		key += "|f32"
	}
	return key
}

// copySlot answers a planned duplicate from its leader's slot. A
// selection duplicate is marked Cached and its Telemetry mirrors the
// result-cache hit contract — a sequential loop would have answered it
// from the result cache the leader filled, reporting its own near-zero
// execution with the computing execution's Telemetry under Replay (a
// leader that was itself a hit already carries the filler there).
// Evaluation duplicates keep the leader's timings verbatim: evaluations
// are recomputed (deterministically) by a loop, so there is no cache
// contract to mirror. Neither kind carries a Trace — the copy did not
// execute; the batch trace marks it with a dedup=true member span.
func copySlot(leader BatchResult, selection bool) BatchResult {
	if leader.Err != nil {
		return BatchResult{Err: leader.Err}
	}
	res := copyResult(leader.Result)
	if selection {
		res.Cached = true
	}
	var tel *Telemetry
	if leader.Telemetry != nil {
		cp := *leader.Telemetry
		cp.Trace = nil
		if selection {
			replay := cp
			if cp.Replay != nil {
				replay = *cp.Replay
			}
			tel = &Telemetry{Replay: &replay}
		} else {
			tel = &cp
		}
	}
	return BatchResult{Result: res, Telemetry: tel}
}

// member answers one batch slot: selection members go through the
// result-cached Select path, evaluation members through the shared
// evaluate path with the metrics wrapped into a Result for a uniform
// slot shape.
func (e *Engine) member(ctx context.Context, q Query, exec Exec) BatchResult {
	if q.ExplicitSet == nil {
		res, tel, err := e.Select(ctx, q, exec)
		return BatchResult{Result: res, Telemetry: tel, Err: err}
	}
	m, reg, tel, err := e.evaluate(ctx, q, exec)
	if err != nil {
		return BatchResult{Err: err}
	}
	res := &Result{
		Indices:     append([]int(nil), q.ExplicitSet...),
		Metrics:     m,
		ExactARR:    -1,
		SkylineSize: reg.ds.N(), // evaluation preprocessing never restricts
	}
	res.Labels = make([]string, len(res.Indices))
	for i, idx := range res.Indices {
		res.Labels[i] = reg.ds.Label(idx)
	}
	return BatchResult{Result: res, Telemetry: tel, Err: nil}
}
