package fam

import (
	"context"
	"fmt"
	"sync"
)

// BatchResult is one member slot of a SelectBatch answer. Exactly one of
// (Result, Err) is meaningful: a failed member carries its error without
// poisoning its siblings.
type BatchResult struct {
	// Result and Telemetry answer the member query (Result.Cached marks
	// result-cache hits, as in Select). For evaluation members
	// (ExplicitSet set) Result carries the evaluated set and its Metrics.
	Result    *Result
	Telemetry *Telemetry
	// Err is the member's failure, nil on success. Match it with
	// errors.Is against the usual sentinels (ErrBadOptions,
	// ErrUnknownDataset, ErrInvalidSet, …).
	Err error
}

// SelectBatch answers a panel of semantic queries under one execution
// policy: a k-sweep, an algorithm comparison, or any mix of selection
// and evaluation members (members may even target different registered
// datasets). Members that share a (dataset, seed, N) triple share one
// preprocessing pass — the skyline index, the sampled utility functions,
// and the materialized utility matrix are each built exactly once, with
// concurrent members coalescing onto the first build via the
// preprocessing cache's singleflight — and the member query phases fan
// out concurrently over the Engine's shared worker pool.
//
// Every member gets its own answer slot: one bad member yields an Err in
// its slot while the rest of the batch completes. The returned slice
// always has len(queries) entries, in order. The call-level error is
// reserved for whole-batch failures (a closed Engine, an empty batch, a
// canceled context).
//
// Each member is answered exactly as Engine.Select/Engine.Evaluate would
// answer it — same result cache, same Fingerprint keys, same
// bit-identity guarantees — so a batch is semantically equivalent to a
// loop, just amortized.
func (e *Engine) SelectBatch(ctx context.Context, queries []Query, exec Exec) ([]BatchResult, error) {
	if e.closed.Load() {
		return nil, ErrEngineClosed
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadOptions)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.batches.Add(1)
	e.batchQueries.Add(uint64(len(queries)))

	out := make([]BatchResult, len(queries))
	// Member fan-out width: the Exec's Parallelism when set (the batch is
	// one workload — its worker bound covers the members too), otherwise
	// every member at once; the shared pool bounds the actual helper
	// goroutines either way.
	width := exec.Parallelism
	if width <= 0 || width > len(queries) {
		width = len(queries)
	}
	sem := make(chan struct{}, width)
	var wg sync.WaitGroup
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = e.member(ctx, queries[i], exec)
		}(i)
	}
	wg.Wait()
	return out, nil
}

// member answers one batch slot: selection members go through the
// result-cached Select path, evaluation members through the shared
// evaluate path with the metrics wrapped into a Result for a uniform
// slot shape.
func (e *Engine) member(ctx context.Context, q Query, exec Exec) BatchResult {
	if q.ExplicitSet == nil {
		res, tel, err := e.Select(ctx, q, exec)
		return BatchResult{Result: res, Telemetry: tel, Err: err}
	}
	m, reg, tel, err := e.evaluate(ctx, q, exec)
	if err != nil {
		return BatchResult{Err: err}
	}
	res := &Result{
		Indices:     append([]int(nil), q.ExplicitSet...),
		Metrics:     m,
		ExactARR:    -1,
		SkylineSize: reg.ds.N(), // evaluation preprocessing never restricts
	}
	res.Labels = make([]string, len(res.Indices))
	for i, idx := range res.Indices {
		res.Labels[i] = reg.ds.Label(idx)
	}
	return BatchResult{Result: res, Telemetry: tel, Err: nil}
}
