package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	fam "github.com/regretlab/fam"
)

func TestRunWritesCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := run([]string{"-kind", "hotels", "-n", "20", "-o", path}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := fam.LoadCSV(f, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 20 || ds.Dim() != 5 {
		t.Fatalf("dataset shape %dx%d", ds.N(), ds.Dim())
	}
	if !strings.HasPrefix(ds.Labels[0], "hotel-") {
		t.Fatalf("labels missing: %v", ds.Labels[0])
	}
}

func TestRunAllKinds(t *testing.T) {
	dir := t.TempDir()
	kinds := []string{"synthetic", "nba", "nba22", "household", "forestcover", "uscensus", "hotels"}
	for _, kind := range kinds {
		path := filepath.Join(dir, kind+".csv")
		if err := run([]string{"-kind", kind, "-n", "15", "-o", path}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		info, err := os.Stat(path)
		if err != nil || info.Size() == 0 {
			t.Fatalf("%s: empty output (%v)", kind, err)
		}
	}
}

func TestRunCorrelations(t *testing.T) {
	dir := t.TempDir()
	for _, corr := range []string{"independent", "correlated", "anticorrelated", "spherical"} {
		path := filepath.Join(dir, corr+".csv")
		if err := run([]string{"-kind", "synthetic", "-n", "10", "-d", "3", "-corr", corr, "-o", path}); err != nil {
			t.Fatalf("%s: %v", corr, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-kind", "unknown"},
		{"-kind", "synthetic", "-corr", "diagonal"},
		{"-kind", "hotels", "-n", "0"},
		{"-kind", "hotels", "-o", "/nonexistent-dir/x.csv"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v) should error", i, args)
		}
	}
}
