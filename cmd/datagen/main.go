// Command datagen writes the repository's generated datasets to CSV so
// they can be inspected, versioned, or fed back through famcli -data.
//
// Usage:
//
//	datagen -kind hotels -n 500 -o hotels.csv
//	datagen -kind synthetic -n 10000 -d 6 -corr anticorrelated -o anti.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	fam "github.com/regretlab/fam"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		kind = fs.String("kind", "synthetic", "synthetic|nba|nba22|household|forestcover|uscensus|hotels")
		n    = fs.Int("n", 1000, "number of points")
		d    = fs.Int("d", 6, "synthetic dimensionality")
		corr = fs.String("corr", "independent", "synthetic correlation: independent|correlated|anticorrelated")
		seed = fs.Uint64("seed", 1, "random seed")
		out  = fs.String("o", "", "output path (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		ds  *fam.Dataset
		err error
	)
	switch strings.ToLower(*kind) {
	case "synthetic":
		var c fam.Correlation
		switch strings.ToLower(*corr) {
		case "independent":
			c = fam.Independent
		case "correlated":
			c = fam.Correlated
		case "anticorrelated":
			c = fam.Anticorrelated
		case "spherical":
			c = fam.Spherical
		default:
			return fmt.Errorf("unknown correlation %q", *corr)
		}
		ds, err = fam.Synthetic(*n, *d, c, *seed)
	case "nba":
		ds, err = fam.SimulatedNBA(*n, *seed)
	case "nba22":
		ds, err = fam.SimulatedNBA22(*n, *seed)
	case "household":
		ds, err = fam.SimulatedHousehold(*n, *seed)
	case "forestcover":
		ds, err = fam.SimulatedForestCover(*n, *seed)
	case "uscensus":
		ds, err = fam.SimulatedUSCensus(*n, *seed)
	case "hotels":
		ds, err = fam.Hotels(*n, *seed)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return fam.SaveCSV(w, ds)
}
