package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	fam "github.com/regretlab/fam"
	"github.com/regretlab/fam/internal/load"
	"github.com/regretlab/fam/serve"
)

const tinySpec = "tiny=synthetic:25:3:independent:11"

func readReport(t *testing.T, path string) load.Report {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading report: %v", err)
	}
	var r load.Report
	if err := json.Unmarshal(blob, &r); err != nil {
		t.Fatalf("parsing report: %v", err)
	}
	return r
}

// One generated run: the report must carry the accounting invariant,
// a positive throughput, and the echo of the workload spec.
func TestFamloadGenerateAndReport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_test.json")
	trace := filepath.Join(dir, "trace.jsonl")
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-datasets", tinySpec,
		"-rate", "400", "-duration", "500ms", "-warmup", "100ms",
		"-mix", "ds=tiny,k=2-4,n=40,prio=high,w=3;ds=tiny,k=5,n=40,prio=low",
		"-label", "test", "-out", out, "-record", trace, "-seed", "9",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	r := readReport(t, out)
	if r.SchemaVersion != load.ReportSchemaVersion || r.Label != "test" || r.Mode != "engine" {
		t.Fatalf("report header: %+v", r)
	}
	if r.Offered == 0 || r.Completed+r.Shed+r.Errors != r.Offered {
		t.Fatalf("accounting broken: offered=%d completed=%d shed=%d errors=%d",
			r.Offered, r.Completed, r.Shed, r.Errors)
	}
	if r.ThroughputRPS <= 0 {
		t.Fatalf("throughput %g, want > 0", r.ThroughputRPS)
	}
	if r.Workload == nil || r.Workload.Rate != 400 || len(r.Workload.Templates) != 2 {
		t.Fatalf("workload echo: %+v", r.Workload)
	}
	if len(r.Classes) == 0 || r.JainIndex <= 0 || r.JainIndex > 1 {
		t.Fatalf("classes/jain: %+v %g", r.Classes, r.JainIndex)
	}
	if r.Caches == nil {
		t.Fatal("engine-mode report missing cache rates")
	}
	if _, err := os.Stat(trace); err != nil {
		t.Fatalf("trace not recorded: %v", err)
	}
	// Warmup entries were generated beyond the measurement window.
	if r.TraceEntries <= r.Offered {
		t.Fatalf("trace entries %d not larger than offered %d (warmup missing)", r.TraceEntries, r.Offered)
	}
}

// famload -replay is deterministic: two replays of one trace against
// freshly built engines produce byte-identical outcome sequences.
func TestFamloadReplayDeterministic(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-datasets", tinySpec,
		"-rate", "300", "-duration", "400ms",
		"-mix", "ds=tiny,k=2-5,n=40",
		"-label", "gen", "-out", filepath.Join(dir, "BENCH_gen.json"),
		"-record", trace, "-paced", "off",
	}, &buf)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	replay := func(tag string) (string, load.Report) {
		t.Helper()
		outcomes := filepath.Join(dir, "outcomes_"+tag+".jsonl")
		report := filepath.Join(dir, "BENCH_"+tag+".json")
		err := run(context.Background(), []string{
			"-datasets", tinySpec,
			"-replay", trace, "-label", tag, "-out", report, "-outcomes", outcomes,
		}, &bytes.Buffer{})
		if err != nil {
			t.Fatalf("replay %s: %v", tag, err)
		}
		blob, err := os.ReadFile(outcomes)
		if err != nil {
			t.Fatal(err)
		}
		return string(blob), readReport(t, report)
	}
	o1, r1 := replay("r1")
	o2, r2 := replay("r2")
	if o1 != o2 {
		t.Fatal("replayed outcome sequences differ")
	}
	if r1.OutcomeHash != r2.OutcomeHash {
		t.Fatalf("outcome hashes differ: %s vs %s", r1.OutcomeHash, r2.OutcomeHash)
	}
	if r1.Paced || r2.Paced {
		t.Fatal("replays must default to unpaced (deterministic) mode")
	}
}

// HTTP mode drives a live famserve and still balances its accounting.
func TestFamloadHTTPMode(t *testing.T) {
	engine, _, err := load.BuildEngine(fam.EngineConfig{Workers: 2}, tinySpec, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	srv := httptest.NewServer(serve.NewHandler(engine))
	defer srv.Close()

	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_http.json")
	var buf bytes.Buffer
	err = run(context.Background(), []string{
		"-url", srv.URL,
		"-rate", "300", "-duration", "400ms",
		"-mix", "ds=tiny,k=2-4,n=40,prio=high;ds=tiny,k=5,n=40,deadline=-1",
		"-label", "http", "-out", out, "-paced", "off",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	r := readReport(t, out)
	if r.Mode != "http" {
		t.Fatalf("mode %q", r.Mode)
	}
	if r.Completed == 0 {
		t.Fatal("no completions over HTTP")
	}
	// The deadline=-1 template is expired on arrival: every one of its
	// requests must shed (429) and the books must still balance.
	if r.Shed == 0 {
		t.Fatal("expired-deadline template never shed")
	}
	if r.Completed+r.Shed+r.Errors != r.Offered {
		t.Fatalf("accounting broken: %+v", r)
	}
	if r.Caches == nil {
		t.Fatal("http-mode report missing cache rates (stats endpoint probe failed)")
	}
	if r.Sched == nil {
		t.Fatal("http-mode report missing sched rates (/metrics probe failed)")
	}
}

// Queue-wait attribution survives the HTTP hop: requests that fan out
// wider than one goroutine (par=4) on a small pool produce live helper
// grants, and both the per-class grant rates and the queue-wait
// percentiles in the report come back non-zero from the /metrics and
// telemetry paths of a real famserve.
func TestFamloadHTTPQueueWaitUnderSaturation(t *testing.T) {
	engine, _, err := load.BuildEngine(fam.EngineConfig{Workers: 2}, tinySpec, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	srv := httptest.NewServer(serve.NewHandler(engine))
	defer srv.Close()

	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_qw.json")
	var buf bytes.Buffer
	err = run(context.Background(), []string{
		"-url", srv.URL,
		"-rate", "300", "-duration", "400ms",
		"-mix", "ds=tiny,k=2-4,n=40,par=4,prio=high;ds=tiny,k=3|5,n=40,par=4,prio=low",
		"-label", "qw", "-out", out, "-paced", "off", "-seed", "3",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	r := readReport(t, out)
	if r.Completed == 0 || r.Errors > 0 {
		t.Fatalf("run outcomes: %+v", r)
	}
	if r.QueueWait.MaxMS <= 0 {
		t.Fatalf("queue-wait percentiles all zero over HTTP: %+v", r.QueueWait)
	}
	if r.Sched == nil || r.Sched.Granted == 0 {
		t.Fatalf("sched rates missing or empty: %+v", r.Sched)
	}
	for _, class := range []string{"low", "high"} {
		if r.Sched.Classes[class].Granted == 0 {
			t.Fatalf("class %q collected no grants: %+v", class, r.Sched.Classes)
		}
		if cr, ok := r.Classes[class]; !ok || cr.QueueWait.MaxMS <= 0 {
			t.Fatalf("class %q queue-wait summary empty: %+v", class, r.Classes)
		}
	}
}

func TestSanitizeLabel(t *testing.T) {
	if got := sanitizeLabel("ci run/2026-08"); got != "ci_run_2026-08" {
		t.Fatalf("sanitizeLabel = %q", got)
	}
}
