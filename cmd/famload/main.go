// Command famload is the sustained-load harness of the fam serving
// stack: it generates (or replays) an open-loop request workload,
// drives either a fam.Engine in-process or a running famserve over
// HTTP, and emits a machine-readable fitness report — throughput,
// latency percentiles, shed rate, per-priority-class breakdown with a
// Jain fairness index, and cache hit rates — as BENCH_<label>.json,
// the data points of the repository's perf trajectory.
//
// Generate a workload against an in-process engine:
//
//	famload -datasets hotels:200 -rate 200 -duration 10s -warmup 2s \
//	        -mix 'ds=hotels,k=2-8,prio=high,w=3;ds=hotels,k=5,prio=low,deadline=250' \
//	        -record trace.jsonl -label nightly
//
// Replay a recorded trace (sequential by default, so the per-request
// outcome sequence is deterministic — byte-identical across runs at a
// fixed engine configuration):
//
//	famload -datasets hotels:200 -replay trace.jsonl -outcomes out.jsonl
//
// Drive a live server instead of an in-process engine:
//
//	famload -url http://localhost:8080 -rate 100 -duration 10s -mix 'ds=hotels,k=3-6'
//
// Stripe the same workload round-robin across replicas directly — the
// no-router baseline a famrouter run is compared against:
//
//	famload -target http://localhost:8081,http://localhost:8082,http://localhost:8083 \
//	        -rate 100 -duration 10s -mix 'ds=hotels,k=3-6'
//
// Arrival processes: poisson (default), gamma (-gamma-shape tunes
// burstiness; < 1 burstier than poisson), uniform (a metronome).
// Everything is seeded: equal -seed values generate identical traces.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	fam "github.com/regretlab/fam"
	"github.com/regretlab/fam/internal/load"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "famload:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("famload", flag.ContinueOnError)
	var (
		url        = fs.String("url", "", "drive a running famserve at this base URL instead of an in-process engine")
		targets    = fs.String("target", "", "comma-separated base URLs to stripe requests across round-robin (the direct-to-replicas baseline; one URL behaves like -url)")
		specs      = fs.String("datasets", "hotels:200", "in-process engine dataset specs (same syntax as famserve -datasets)")
		workers    = fs.Int("workers", 0, "in-process engine worker-pool size (0 = all CPUs)")
		maxQueue   = fs.Int("max-queue", 0, "in-process engine server-side admission bound applied to requests without their own max_queue (0 = none)")
		rate       = fs.Float64("rate", 50, "mean arrival rate in requests/second")
		duration   = fs.Duration("duration", 10*time.Second, "measurement window length")
		warmup     = fs.Duration("warmup", 0, "warmup window prepended to the measurement window: requests run but are excluded from the report")
		arrival    = fs.String("arrival", load.ArrivalPoisson, "arrival process: poisson|gamma|uniform")
		gammaShape = fs.Float64("gamma-shape", 0.5, "gamma arrival shape (<1 burstier than poisson, >1 smoother)")
		seed       = fs.Uint64("seed", 1, "workload generation seed; equal seeds generate identical traces")
		mix        = fs.String("mix", "ds=hotels,k=2-6", "workload mix: semicolon-separated templates of key=value pairs (ds, k, seed, algo, prio, deadline, maxq, n, eps, sigma, w)")
		record     = fs.String("record", "", "write the generated trace to this JSONL file")
		replay     = fs.String("replay", "", "replay this JSONL trace instead of generating a workload")
		paced      = fs.String("paced", "auto", "open-loop pacing: on (fire at trace offsets), off (sequential, deterministic outcomes), auto (on for generated runs, off for replays)")
		speed      = fs.Float64("speed", 1, "paced-replay time scale: 2 replays twice as fast")
		label      = fs.String("label", "run", "report label; the default output file is BENCH_<label>.json")
		outPath    = fs.String("out", "", "report output path (default BENCH_<label>.json)")
		outcomes   = fs.String("outcomes", "", "also write the deterministic per-request outcome sequence (JSONL) to this path")
	)
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Assemble the trace: replayed verbatim, or generated from the mix.
	var trace []load.TraceEntry
	var workload *load.Spec
	generated := *replay == ""
	if generated {
		templates, err := load.ParseMix(*mix)
		if err != nil {
			return err
		}
		spec := load.Spec{
			Rate:       *rate,
			Duration:   *warmup + *duration,
			Arrival:    *arrival,
			GammaShape: *gammaShape,
			Seed:       *seed,
			Templates:  templates,
		}
		trace, err = spec.Generate()
		if err != nil {
			return err
		}
		workload = &spec
	} else {
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		trace, err = load.ReadTrace(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	if len(trace) == 0 {
		return fmt.Errorf("empty trace (rate %g over %s generated nothing)", *rate, *duration)
	}
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			return err
		}
		if err := load.WriteTrace(f, trace); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	cfg := load.RunConfig{Warmup: *warmup, Speed: *speed}
	switch *paced {
	case "on":
		cfg.Paced = true
	case "off":
		cfg.Paced = false
	case "auto":
		// Generated runs measure sustained load (paced); replays default
		// to the deterministic sequential mode.
		cfg.Paced = generated
	default:
		return fmt.Errorf("bad -paced %q (want on|off|auto)", *paced)
	}

	// Build the target and the stats probes around the run. -target is
	// the multi-URL generalization of -url: one URL behaves identically,
	// several stripe the workload round-robin (the direct-to-replicas
	// baseline a through-router run is compared against).
	if *targets != "" && *url != "" {
		return fmt.Errorf("-url and -target are mutually exclusive (use -target alone)")
	}
	var urls []string
	if *targets != "" {
		for _, u := range strings.Split(*targets, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			return fmt.Errorf("-target lists no URLs")
		}
	} else if *url != "" {
		urls = []string{*url}
	}
	var target load.Target
	mode := "engine"
	statsBefore, statsAfter := fam.EngineStats{}, fam.EngineStats{}
	haveStats := false
	if len(urls) > 0 {
		mode = "http"
		if len(urls) == 1 {
			target = load.HTTPTarget{BaseURL: urls[0]}
			// Engine-stat deltas only make sense against one server: a
			// striped run spans several engines' counters.
			if s, err := fetchStats(ctx, urls[0]); err == nil {
				statsBefore, haveStats = s, true
			}
		} else {
			httpTargets := make([]load.Target, len(urls))
			for i, u := range urls {
				httpTargets[i] = load.HTTPTarget{BaseURL: u}
			}
			mt, err := load.NewMultiTarget(httpTargets...)
			if err != nil {
				return err
			}
			target = mt
		}
	} else {
		engine, infos, err := load.BuildEngine(fam.EngineConfig{Workers: *workers}, *specs, 0)
		if err != nil {
			return err
		}
		defer engine.Close()
		for _, info := range infos {
			fmt.Fprintf(out, "dataset %q: n=%d dim=%d dist=%s\n", info.Name, info.N, info.Dim, info.Distribution)
		}
		if *maxQueue > 0 {
			target = maxQueueTarget{inner: load.EngineTarget{Engine: engine}, maxQueue: *maxQueue}
		} else {
			target = load.EngineTarget{Engine: engine}
		}
		statsBefore, haveStats = engine.Stats(), true
	}

	results, wall, err := load.Run(ctx, target, trace, cfg)
	if err != nil {
		return err
	}
	if len(urls) == 1 {
		if s, err := fetchStats(ctx, urls[0]); err == nil && haveStats {
			statsAfter = s
		} else {
			haveStats = false
		}
	} else if et, ok := target.(load.EngineTarget); ok {
		statsAfter = et.Engine.Stats()
	} else if mt, ok := target.(maxQueueTarget); ok {
		statsAfter = mt.inner.Engine.Stats()
	}

	report := load.BuildReport(*label, mode, results, wall, *warmup, cfg)
	report.Workload = workload
	if haveStats {
		rates := load.CacheRatesFrom(statsBefore, statsAfter)
		report.Caches = &rates
		sched := load.SchedRatesFrom(statsBefore, statsAfter)
		report.Sched = &sched
	}

	path := *outPath
	if path == "" {
		path = "BENCH_" + sanitizeLabel(*label) + ".json"
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	if *outcomes != "" {
		f, err := os.Create(*outcomes)
		if err != nil {
			return err
		}
		if err := load.WriteOutcomes(f, results); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	fmt.Fprintf(out,
		"%s: %d offered, %d completed (%.1f rps), %d shed (%.1f%%), %d errors; p50 %.1fms p99 %.1fms; jain %.3f; report %s\n",
		*label, report.Offered, report.Completed, report.ThroughputRPS,
		report.Shed, report.ShedRate*100, report.Errors,
		report.Latency.P50MS, report.Latency.P99MS, report.JainIndex, path)
	return nil
}

// maxQueueTarget applies a harness-side default admission bound to
// requests that do not set their own max_queue — the in-process
// equivalent of famserve's -max-queue handler default.
type maxQueueTarget struct {
	inner    load.EngineTarget
	maxQueue int
}

func (t maxQueueTarget) Do(ctx context.Context, req load.Request) load.Outcome {
	if req.MaxQueue == 0 {
		req.MaxQueue = t.maxQueue
	}
	return t.inner.Do(ctx, req)
}

// fetchStats reads the engine counters from a live famserve: the
// /metrics exposition first (the per-class scheduler series the
// report's sched deltas need), falling back to /v2/stats against
// servers predating the metrics endpoint.
func fetchStats(ctx context.Context, baseURL string) (fam.EngineStats, error) {
	if s, err := fetchMetrics(ctx, baseURL); err == nil {
		return s, nil
	}
	return fetchEngineStats(ctx, baseURL)
}

// fetchMetrics scrapes GET /metrics and reconstructs the stats view
// the report deltas read.
func fetchMetrics(ctx context.Context, baseURL string) (fam.EngineStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(baseURL, "/")+"/metrics", nil)
	if err != nil {
		return fam.EngineStats{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fam.EngineStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fam.EngineStats{}, fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	samples, err := load.ParseMetrics(resp.Body)
	if err != nil {
		return fam.EngineStats{}, err
	}
	return load.EngineStatsFromMetrics(samples), nil
}

// fetchEngineStats reads the engine counters from a live famserve.
func fetchEngineStats(ctx context.Context, baseURL string) (fam.EngineStats, error) {
	var body struct {
		Engine fam.EngineStats `json:"engine"`
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(baseURL, "/")+"/v2/stats", nil)
	if err != nil {
		return fam.EngineStats{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fam.EngineStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fam.EngineStats{}, fmt.Errorf("stats status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fam.EngineStats{}, err
	}
	return body.Engine, nil
}

// sanitizeLabel keeps report filenames shell-friendly.
func sanitizeLabel(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}
