// Command famcli selects an average-regret-ratio minimizing set from a CSV
// dataset (or a built-in generated one) and prints the chosen rows with
// quality metrics.
//
// Usage:
//
//	famcli -data hotels.csv -k 5
//	famcli -gen nba -n 664 -k 5 -algo k-hit
//	famcli -gen synthetic -n 10000 -d 6 -corr anticorrelated -k 10 -eps 0.05
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	fam "github.com/regretlab/fam"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "famcli:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("famcli", flag.ContinueOnError)
	var (
		dataPath = fs.String("data", "", "CSV dataset path (header row; optional leading 'label' column)")
		gen      = fs.String("gen", "", "generate a dataset instead: synthetic|nba|nba22|household|forestcover|uscensus|hotels")
		n        = fs.Int("n", 1000, "generated dataset size")
		d        = fs.Int("d", 6, "generated synthetic dimensionality")
		corr     = fs.String("corr", "independent", "synthetic correlation: independent|correlated|anticorrelated")
		k        = fs.Int("k", 5, "number of points to select")
		algo     = fs.String("algo", "greedy-shrink", "algorithm: greedy-shrink|greedy-shrink-lazy|greedy-shrink-naive|greedy-add|dp|brute-force|mrr-greedy|sky-dom|k-hit")
		eps      = fs.Float64("eps", 0.1, "sampling error bound (Theorem 4)")
		sigma    = fs.Float64("sigma", 0.1, "sampling confidence parameter")
		samples  = fs.Int("N", 0, "override sample size directly (0 = derive from eps/sigma)")
		seed     = fs.Uint64("seed", 1, "random seed")
		ces      = fs.Float64("ces", 0, "use CES utilities with this rho (0 = linear)")
		workers  = fs.Int("workers", 0, "worker goroutines for preprocessing and query evaluation (0 = all CPUs, 1 = serial; results are identical at any setting)")
		lazyB    = fs.Int("lazy-batch", 0, "greedy-shrink-lazy refresh batch size (<=1 = serial pop-refresh, negative = adaptive controller; selections are identical at any setting, only work counters change)")
		coreset  = fs.Bool("coreset", false, "enable the ε-kernel coreset candidate prepass (solution quality within -coreset-eps of the unpruned run)")
		csEps    = fs.Float64("coreset-eps", 0, "coreset kernel tolerance in [0,1) (0 = library default; requires -coreset)")
		f32      = fs.Bool("float32", false, "store the utility matrix in float32 (half the memory, ~1e-7 relative metric drift)")
		jsonOut  = fs.Bool("json", false, "emit the result as JSON instead of a table")
	)
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ds, err := loadDataset(*dataPath, *gen, *n, *d, *corr, *seed)
	if err != nil {
		return err
	}
	var dist fam.Distribution
	if *ces > 0 {
		dist, err = fam.CESUniform(ds.Dim(), *ces)
	} else {
		dist, err = fam.UniformLinear(ds.Dim())
	}
	if err != nil {
		return err
	}
	algorithm, err := parseAlgo(*algo)
	if err != nil {
		return err
	}

	// The query names the problem; the exec carries the throughput knobs.
	// Results are identical at any -workers / -lazy-batch setting.
	res, tel, err := fam.Select(context.Background(), fam.Query{
		Data: ds, Dist: dist,
		K: *k, Algorithm: algorithm, Epsilon: *eps, Sigma: *sigma,
		SampleSize: *samples, Seed: *seed,
		Coreset: *coreset, CoresetEps: *csEps, Float32: *f32,
	}, fam.Exec{Parallelism: *workers, LazyBatch: *lazyB})
	if err != nil {
		return err
	}

	if *jsonOut {
		return writeJSON(out, ds, algorithm, res, tel)
	}

	fmt.Fprintf(out, "dataset %s: selected %d of %d points with %s\n\n", ds.Name, *k, ds.N(), algorithm)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	header := "label"
	for _, a := range attrsOf(ds) {
		header += "\t" + a
	}
	fmt.Fprintln(w, header)
	for i, idx := range res.Indices {
		row := res.Labels[i]
		for _, v := range ds.Points[idx] {
			row += fmt.Sprintf("\t%.3f", v)
		}
		fmt.Fprintln(w, row)
	}
	w.Flush()

	m := res.Metrics
	fmt.Fprintf(out, "\navg regret ratio  %.5f\n", m.ARR)
	if res.ExactARR >= 0 {
		fmt.Fprintf(out, "exact avg regret  %.5f\n", res.ExactARR)
	}
	fmt.Fprintf(out, "std dev           %.5f\n", m.StdDev)
	fmt.Fprintf(out, "rr percentiles    70%%=%.4f 80%%=%.4f 90%%=%.4f 95%%=%.4f 99%%=%.4f 100%%=%.4f\n",
		m.Percentiles[0], m.Percentiles[1], m.Percentiles[2], m.Percentiles[3], m.Percentiles[4], m.Percentiles[5])
	if res.CoresetSize >= 0 {
		fmt.Fprintf(out, "coreset           %d of %d candidates survive\n", res.CoresetSize, res.SkylineSize)
	}
	fmt.Fprintf(out, "preprocess        %v (skyline: %d candidates)\n", tel.Preprocess, res.SkylineSize)
	fmt.Fprintf(out, "query time        %v\n", tel.Query)
	return nil
}

// jsonResult is the machine-readable output schema of -json.
type jsonResult struct {
	Dataset         string    `json:"dataset"`
	Algorithm       string    `json:"algorithm"`
	Indices         []int     `json:"indices"`
	Labels          []string  `json:"labels"`
	ARR             float64   `json:"avg_regret_ratio"`
	ExactARR        *float64  `json:"exact_avg_regret_ratio,omitempty"`
	StdDev          float64   `json:"std_dev"`
	MaxRR           float64   `json:"max_regret_ratio"`
	Percentiles     []float64 `json:"regret_at_percentile"`
	PercentileLevel []float64 `json:"percentile_levels"`
	SkylineSize     int       `json:"skyline_size"`
	CoresetSize     *int      `json:"coreset_size,omitempty"`
	PreprocessSec   float64   `json:"preprocess_seconds"`
	QuerySec        float64   `json:"query_seconds"`
}

func writeJSON(out io.Writer, ds *fam.Dataset, algorithm fam.Algorithm, res *fam.Result, tel *fam.Telemetry) error {
	jr := jsonResult{
		Dataset:         ds.Name,
		Algorithm:       algorithm.String(),
		Indices:         res.Indices,
		Labels:          res.Labels,
		ARR:             res.Metrics.ARR,
		StdDev:          res.Metrics.StdDev,
		MaxRR:           res.Metrics.MaxRR,
		Percentiles:     res.Metrics.Percentiles,
		PercentileLevel: res.Metrics.PercentileLevel,
		SkylineSize:     res.SkylineSize,
		PreprocessSec:   tel.Preprocess.Seconds(),
		QuerySec:        tel.Query.Seconds(),
	}
	if res.ExactARR >= 0 {
		v := res.ExactARR
		jr.ExactARR = &v
	}
	if res.CoresetSize >= 0 {
		cs := res.CoresetSize
		jr.CoresetSize = &cs
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(jr)
}

func loadDataset(path, gen string, n, d int, corr string, seed uint64) (*fam.Dataset, error) {
	switch {
	case path != "" && gen != "":
		return nil, fmt.Errorf("use either -data or -gen, not both")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return fam.LoadCSV(f, path)
	case gen != "":
		switch strings.ToLower(gen) {
		case "synthetic":
			c, err := parseCorr(corr)
			if err != nil {
				return nil, err
			}
			return fam.Synthetic(n, d, c, seed)
		case "nba":
			return fam.SimulatedNBA(n, seed)
		case "nba22":
			return fam.SimulatedNBA22(n, seed)
		case "household":
			return fam.SimulatedHousehold(n, seed)
		case "forestcover":
			return fam.SimulatedForestCover(n, seed)
		case "uscensus":
			return fam.SimulatedUSCensus(n, seed)
		case "hotels":
			return fam.Hotels(n, seed)
		default:
			return nil, fmt.Errorf("unknown generator %q", gen)
		}
	default:
		return nil, fmt.Errorf("one of -data or -gen is required")
	}
}

func parseCorr(s string) (fam.Correlation, error) {
	switch strings.ToLower(s) {
	case "independent":
		return fam.Independent, nil
	case "correlated":
		return fam.Correlated, nil
	case "anticorrelated":
		return fam.Anticorrelated, nil
	case "spherical":
		return fam.Spherical, nil
	default:
		return 0, fmt.Errorf("unknown correlation %q", s)
	}
}

func parseAlgo(s string) (fam.Algorithm, error) {
	return fam.ParseAlgorithm(strings.ToLower(s))
}

func attrsOf(ds *fam.Dataset) []string {
	if ds.Attrs != nil {
		return ds.Attrs
	}
	out := make([]string, ds.Dim())
	for i := range out {
		out[i] = fmt.Sprintf("a%d", i)
	}
	return out
}
