package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	fam "github.com/regretlab/fam"
)

func TestRunGenerated(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-gen", "hotels", "-n", "100", "-k", "3", "-N", "500"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"selected 3 of 100", "avg regret ratio", "query time", "hotel-"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunFromCSV(t *testing.T) {
	ds, err := fam.Hotels(40, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "hotels.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fam.SaveCSV(f, ds); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	if err := run([]string{"-data", path, "-k", "2", "-N", "300"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "selected 2 of 40") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestRunAlgorithms(t *testing.T) {
	for _, algo := range []string{"greedy-shrink", "greedy-shrink-lazy", "k-hit", "sky-dom", "mrr-greedy", "brute-force", "greedy-add"} {
		var out bytes.Buffer
		err := run([]string{"-gen", "synthetic", "-n", "30", "-d", "3", "-k", "2", "-N", "200", "-algo", algo}, &out)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
	// DP needs d=2 and reports the exact value.
	var out bytes.Buffer
	err := run([]string{"-gen", "synthetic", "-n", "50", "-d", "2", "-corr", "spherical", "-k", "2", "-N", "300", "-algo", "dp"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "exact avg regret") {
		t.Fatalf("DP output missing exact value:\n%s", out.String())
	}
}

func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-gen", "hotels", "-n", "60", "-k", "3", "-N", "400", "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var jr jsonResult
	if err := json.Unmarshal(out.Bytes(), &jr); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(jr.Indices) != 3 || len(jr.Labels) != 3 {
		t.Fatalf("JSON result %+v", jr)
	}
	if jr.ARR < 0 || jr.ARR > 1 || jr.Algorithm != "greedy-shrink" {
		t.Fatalf("JSON result %+v", jr)
	}
	if jr.ExactARR != nil {
		t.Fatal("sampled run must omit exact arr")
	}
	// DP run carries the exact value.
	out.Reset()
	err = run([]string{"-gen", "synthetic", "-d", "2", "-n", "60", "-corr", "spherical", "-k", "2", "-N", "400", "-algo", "dp", "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var jr2 jsonResult
	if err := json.Unmarshal(out.Bytes(), &jr2); err != nil {
		t.Fatal(err)
	}
	if jr2.ExactARR == nil {
		t.Fatal("DP run must include exact arr")
	}
}

func TestRunCES(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-gen", "nba", "-n", "80", "-k", "3", "-N", "300", "-ces", "0.5"}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                   // no -data or -gen
		{"-gen", "unknown"},                  // bad generator
		{"-gen", "hotels", "-algo", "nope"},  // bad algorithm
		{"-gen", "synthetic", "-corr", "?"},  // bad correlation
		{"-data", "/does/not/exist.csv"},     // missing file
		{"-data", "x.csv", "-gen", "hotels"}, // both sources
		{"-gen", "hotels", "-k", "0"},        // bad k
	}
	for i, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("case %d (%v) should error", i, args)
		}
	}
}

func TestParseAlgoRoundTrip(t *testing.T) {
	for _, a := range []fam.Algorithm{
		fam.GreedyShrink, fam.GreedyShrinkLazy, fam.GreedyShrinkNaive,
		fam.DP2D, fam.BruteForce, fam.MRRGreedy, fam.SkyDom, fam.KHit,
		fam.GreedyAdd,
	} {
		got, err := parseAlgo(a.String())
		if err != nil || got != a {
			t.Fatalf("parseAlgo(%q) = %v, %v", a.String(), got, err)
		}
	}
}

// -workers must change throughput only: the JSON selection (indices,
// labels, and every quality metric) is identical at any worker bound.
func TestRunWorkersDeterministic(t *testing.T) {
	outputs := make([]map[string]interface{}, 0, 3)
	for _, workers := range []string{"1", "4", "0"} {
		var out bytes.Buffer
		err := run([]string{"-gen", "synthetic", "-n", "120", "-d", "4", "-k", "4",
			"-N", "400", "-seed", "5", "-workers", workers, "-json"}, &out)
		if err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		var res map[string]interface{}
		if err := json.Unmarshal(out.Bytes(), &res); err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		// Timing fields are the only legitimate difference between runs.
		delete(res, "preprocess_seconds")
		delete(res, "query_seconds")
		outputs = append(outputs, res)
	}
	for i := 1; i < len(outputs); i++ {
		a, _ := json.Marshal(outputs[0])
		b, _ := json.Marshal(outputs[i])
		if string(a) != string(b) {
			t.Fatalf("worker bounds produced different selections:\n%s\n%s", a, b)
		}
	}
}
