// Command famexp regenerates the paper's tables and figures (and this
// repository's ablation studies) as text tables.
//
// Usage:
//
//	famexp -list
//	famexp -exp fig1
//	famexp -exp all -scale small
//	famexp -exp fig7 -scale paper      # paper-size sweep; slow
//
// The coreset/kernel performance sweep emits and gates BENCH_kernel.json:
//
//	famexp -kernel-bench -scale paper -out BENCH_kernel.json
//	famexp -kernel-bench -scale small -baseline BENCH_kernel.json -gate 0.15
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	fam "github.com/regretlab/fam"
	"github.com/regretlab/fam/internal/experiments"
	"github.com/regretlab/fam/internal/kernelbench"
	"github.com/regretlab/fam/internal/sched"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "famexp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("famexp", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "", "experiment id (see -list), or 'all'")
		scale   = fs.String("scale", "small", "bench|small|paper")
		seed    = fs.Uint64("seed", 1, "random seed")
		workers = fs.Int("workers", 0, "worker goroutines per instance (0 = all CPUs, 1 = serial; tables are identical, timings change)")
		lazyB   = fs.Int("lazy-batch", 0, "lazy strategy refresh batch size (<=1 = serial pop-refresh; tables are identical, lazy work counters change)")
		prio    = fs.String("priority", "", "scheduling class for the run's fan-outs: low|normal|high (tables are identical at any class)")
		list    = fs.Bool("list", false, "list experiments and exit")
		kbench  = fs.Bool("kernel-bench", false, "run the coreset/kernel performance sweep instead of an experiment")
		kout    = fs.String("out", "", "kernel-bench: write the BENCH_kernel.json report here")
		kbase   = fs.String("baseline", "", "kernel-bench: gate the run against this committed BENCH_kernel.json")
		kgate   = fs.Float64("gate", 0.15, "kernel-bench: fail when solver ns/op regresses beyond this fraction of the baseline (0 disables the timing gate; candidate counts are always gated exactly)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.ID, r.Description)
		}
		return nil
	}
	if *kbench {
		return runKernelBench(*scale, *seed, *kout, *kbase, *kgate)
	}
	if *exp == "" {
		return fmt.Errorf("-exp is required (or -list)")
	}
	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		return err
	}
	pr, err := fam.ParsePriority(*prio)
	if err != nil {
		return err
	}
	cfg := experiments.Config{Scale: sc, Seed: *seed,
		Exec: experiments.Exec{Parallelism: *workers, LazyBatch: *lazyB, Priority: sched.Priority(pr)}}
	ctx := context.Background()

	runners := experiments.All()
	if *exp != "all" {
		r, ok := experiments.Lookup(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q; try -list", *exp)
		}
		runners = []experiments.Runner{r}
	}
	for _, r := range runners {
		fmt.Printf("# %s — %s\n", r.ID, r.Description)
		start := time.Now()
		tables, err := r.Run(ctx, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		for _, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		fmt.Printf("(%s completed in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// runKernelBench executes the coreset/kernel sweep: -scale bounds the
// dataset sizes (bench → 10⁴, small → 10⁵, paper → 10⁶), -out stores
// the report, and -baseline/-gate enforce the benchstat-style
// regression gate against a committed report.
func runKernelBench(scale string, seed uint64, out, baselinePath string, gate float64) error {
	maxN := map[string]int{"bench": 10_000, "small": 100_000, "paper": 1_000_000}[scale]
	if maxN == 0 {
		return fmt.Errorf("unknown scale %q for -kernel-bench (want bench|small|paper)", scale)
	}
	rep, err := kernelbench.Run(context.Background(), kernelbench.Config{MaxN: maxN, Seed: seed, Log: os.Stdout})
	if err != nil {
		return err
	}
	if out != "" {
		if err := rep.Write(out); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d rows)\n", out, len(rep.Rows))
	}
	if baselinePath != "" {
		base, err := kernelbench.Load(baselinePath)
		if err != nil {
			return err
		}
		if failures := kernelbench.Gate(rep, base, gate); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "kernel-bench gate:", f)
			}
			return fmt.Errorf("kernel-bench gate failed: %d regression(s) vs %s", len(failures), baselinePath)
		}
		fmt.Printf("kernel-bench gate passed vs %s\n", baselinePath)
	}
	return nil
}
