package main

import (
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "table5", "-scale", "bench"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                    // missing -exp
		{"-exp", "unknown-id"},                // unknown experiment
		{"-exp", "table5", "-scale", "giant"}, // bad scale
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v) should error", i, args)
		}
	}
}
