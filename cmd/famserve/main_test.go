package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	fam "github.com/regretlab/fam"
	"github.com/regretlab/fam/internal/load"
)

func TestParseSpecs(t *testing.T) {
	cases := []struct {
		spec      string
		wantNames []string
		wantN     []int
		wantDim   []int
		wantErr   bool
	}{
		{spec: "hotels:200", wantNames: []string{"hotels"}, wantN: []int{200}, wantDim: []int{5}},
		{spec: "hotels", wantNames: []string{"hotels"}, wantN: []int{1000}, wantDim: []int{5}},
		{
			spec:      "hotels:100, catalog=synthetic:50:4:anticorrelated:9",
			wantNames: []string{"hotels", "catalog"},
			wantN:     []int{100, 50},
			wantDim:   []int{5, 4},
		},
		{spec: "a=hotels:50,b=hotels:60", wantNames: []string{"a", "b"}, wantN: []int{50, 60}, wantDim: []int{5, 5}},
		{spec: "synthetic:30:2", wantNames: []string{"synthetic"}, wantN: []int{30}, wantDim: []int{2}},
		{spec: "nba:64:2", wantNames: []string{"nba"}, wantN: []int{64}, wantDim: []int{15}},
		{spec: "", wantErr: true},
		{spec: "martian:10", wantErr: true},
		{spec: "hotels:notanumber", wantErr: true},
		{spec: "synthetic:10:3:sideways", wantErr: true},
		{spec: "hotels:10,hotels:20", wantErr: true}, // duplicate name
	}
	for _, tc := range cases {
		got, err := load.ParseDatasetSpecs(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseDatasetSpecs(%q) succeeded, want error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseDatasetSpecs(%q): %v", tc.spec, err)
			continue
		}
		if len(got) != len(tc.wantNames) {
			t.Errorf("ParseDatasetSpecs(%q) = %d specs, want %d", tc.spec, len(got), len(tc.wantNames))
			continue
		}
		for i := range got {
			if got[i].Name != tc.wantNames[i] {
				t.Errorf("ParseDatasetSpecs(%q)[%d].Name = %q, want %q", tc.spec, i, got[i].Name, tc.wantNames[i])
			}
			if got[i].DS.N() != tc.wantN[i] {
				t.Errorf("ParseDatasetSpecs(%q)[%d].N = %d, want %d", tc.spec, i, got[i].DS.N(), tc.wantN[i])
			}
			if got[i].DS.Dim() != tc.wantDim[i] {
				t.Errorf("ParseDatasetSpecs(%q)[%d].Dim = %d, want %d", tc.spec, i, got[i].DS.Dim(), tc.wantDim[i])
			}
		}
	}
}

func TestBuildEngine(t *testing.T) {
	engine, infos, err := load.BuildEngine(fam.EngineConfig{Workers: 2}, "hotels:80,tiny=synthetic:30:3", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	if len(infos) != 2 {
		t.Fatalf("infos = %+v", infos)
	}
	names := []string{infos[0].Name, infos[1].Name}
	if strings.Join(names, ",") != "hotels,tiny" {
		t.Fatalf("names = %v", names)
	}
	for _, info := range infos {
		if info.Distribution == "" {
			t.Fatalf("missing distribution for %+v", info)
		}
	}
}

func TestBuildEngineBadSpec(t *testing.T) {
	if _, _, err := load.BuildEngine(fam.EngineConfig{}, "bogus:1", 0); err == nil {
		t.Fatal("bad spec must error")
	}
}

// The -pprof-addr listener serves the standard pprof index and
// profiles on its explicit mux — and nothing else (the API routes must
// not leak onto the profiling listener).
func TestPprofHandler(t *testing.T) {
	srv := httptest.NewServer(pprofHandler())
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("API route on the pprof listener answered %d, want 404", resp.StatusCode)
	}
}
