// Command famserve is the long-lived serving front end of the fam
// library: it loads a set of datasets into a fam.Engine (shared worker
// pool, preprocessing cache, result cache) and serves selection and
// evaluation queries over JSON/HTTP.
//
// Usage:
//
//	famserve -addr :8080 -datasets hotels:200
//	famserve -datasets "hotels:500,catalog=synthetic:10000:6:anticorrelated:3" -workers 8
//
// Endpoints: GET /v1/datasets, POST /v1/datasets (CSV upload),
// POST /v1/select, POST /v1/evaluate, GET /v1/stats (frozen v1 shims),
// and the v2 surface: the batched POST /v2/select (array of semantic
// queries + one exec policy block with per-request priority, deadline,
// and max_queue; per-member error slots) plus GET /v2/datasets,
// POST /v2/datasets, and GET /v2/stats with the typed {code, message}
// error envelope. Scheduling is also reachable via the X-Fam-Priority /
// X-Fam-Deadline-Ms / X-Fam-Max-Queue headers on any query endpoint;
// shed requests answer 429. The server shuts down gracefully on
// SIGINT/SIGTERM: in-flight requests get -shutdown-grace to finish
// before the listener and the engine close.
//
//	curl -s localhost:8080/v1/select -d '{"dataset":"hotels","k":5,"seed":7}'
//	curl -s localhost:8080/v2/select -d '{"queries":[{"dataset":"hotels","k":3,"seed":7},{"dataset":"hotels","k":5,"seed":7}]}'
//	curl -s 'localhost:8080/v1/datasets?name=mine' --data-binary @mine.csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	fam "github.com/regretlab/fam"
	"github.com/regretlab/fam/internal/load"
	"github.com/regretlab/fam/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "famserve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("famserve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		workers  = fs.Int("workers", 0, "shared worker-pool size multiplexed across all queries (0 = all CPUs)")
		prepCap  = fs.Int("prep-cache", 0, "preprocessing cache capacity in entries (0 = default, negative = unbounded)")
		resCap   = fs.Int("result-cache", 0, "result cache capacity in entries (0 = default, negative = unbounded)")
		prepMB   = fs.Int64("prep-cache-mb", 0, "preprocessing cache byte budget in MiB (0 = no byte budget)")
		resMB    = fs.Int64("result-cache-mb", 0, "result cache byte budget in MiB (0 = no byte budget)")
		prepTTL  = fs.Duration("prep-ttl", 0, "preprocessing cache entry lifetime (0 = never expire)")
		resTTL   = fs.Duration("result-ttl", 0, "result cache entry lifetime (0 = never expire)")
		uploadMB = fs.Int64("max-upload-mb", 0, "CSV upload size cap in MiB for POST /v1/datasets (0 = default 32, negative = uploads disabled)")
		batchCap = fs.Int("max-batch", 0, "maximum queries per POST /v2/select batch (0 = default 256)")
		policy   = fs.String("grant-policy", fam.GrantPolicyEDF, "worker-pool helper-grant policy: edf (weighted priority + earliest-deadline-first) or fifo (arrival order)")
		maxQueue = fs.Int("max-queue", 0, "shed requests (429) arriving while more helper requests than this are queued, unless the request sets its own max_queue (0 = no server-side bound)")
		specs    = fs.String("datasets", "hotels:200", "comma-separated dataset specs: [name=]kind[:n[:seed]] or [name=]synthetic[:n[:d[:corr[:seed]]]]")
		ces      = fs.Float64("ces", 0, "use CES utilities with this rho for every dataset (0 = uniform linear)")
		trace    = fs.String("trace", "", "record every accepted query request to this JSONL file (replayable with famload -replay)")
		traceLog = fs.String("trace-log", "", "sink sampled and slow-query span trees to this JSONL file")
		sample   = fs.Int("trace-sample", 0, "sink every Nth query request's span tree to -trace-log (0 = slow queries only)")
		slowMS   = fs.Int64("slow-query-ms", 0, "trace every query request and always sink those slower than this many milliseconds (0 = off)")
		pprofA   = fs.String("pprof-addr", "", "serve net/http/pprof on this separate listener (empty = disabled)")
		grace    = fs.Duration("shutdown-grace", 10*time.Second, "graceful-shutdown window for in-flight requests")
		logger   = slog.New(slog.NewJSONHandler(out, nil))
	)
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *policy != fam.GrantPolicyEDF && *policy != fam.GrantPolicyFIFO {
		return fmt.Errorf("unknown -grant-policy %q (want %s|%s)", *policy, fam.GrantPolicyEDF, fam.GrantPolicyFIFO)
	}
	engine, infos, err := load.BuildEngine(fam.EngineConfig{
		Workers:          *workers,
		PrepCacheSize:    *prepCap,
		ResultCacheSize:  *resCap,
		PrepCacheBytes:   *prepMB << 20,
		ResultCacheBytes: *resMB << 20,
		PrepCacheTTL:     *prepTTL,
		ResultCacheTTL:   *resTTL,
		GrantPolicy:      *policy,
	}, *specs, *ces)
	if err != nil {
		return err
	}
	defer engine.Close()
	for _, info := range infos {
		logger.Info("dataset", "name", info.Name, "n", info.N, "dim", info.Dim, "dist", info.Distribution)
	}

	maxUpload := *uploadMB << 20
	if *uploadMB < 0 {
		maxUpload = -1
	}
	cfg := serve.HandlerConfig{
		MaxUploadBytes:  maxUpload,
		MaxBatchQueries: *batchCap,
		MaxQueue:        *maxQueue,
		TraceSample:     *sample,
		SlowQuery:       time.Duration(*slowMS) * time.Millisecond,
		Log:             logger,
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return fmt.Errorf("opening trace file: %w", err)
		}
		defer f.Close()
		cfg.Trace = f
		logger.Info("recording request trace", "path", *trace)
	}
	if *traceLog != "" {
		f, err := os.Create(*traceLog)
		if err != nil {
			return fmt.Errorf("opening trace log: %w", err)
		}
		defer f.Close()
		cfg.TraceLog = f
		logger.Info("sinking span trees", "path", *traceLog, "sample", *sample, "slow_query_ms", *slowMS)
	}
	handler := serve.NewHandlerConfig(engine, cfg)
	srv := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofA != "" {
		psrv := &http.Server{Addr: *pprofA, Handler: pprofHandler()}
		defer psrv.Close()
		go func() {
			logger.Info("pprof listening", "addr", *pprofA)
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server", "err", err.Error())
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "pool_workers", engine.Stats().PoolWorkers)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down", "grace", grace.String())
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// pprofHandler exposes net/http/pprof on an explicit mux — never on
// the API listener, so profiling stays separable (and firewallable)
// from serving.
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

