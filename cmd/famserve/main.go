// Command famserve is the long-lived serving front end of the fam
// library: it loads a set of datasets into a fam.Engine (shared worker
// pool, preprocessing cache, result cache) and serves selection and
// evaluation queries over JSON/HTTP.
//
// Usage:
//
//	famserve -addr :8080 -datasets hotels:200
//	famserve -datasets "hotels:500,catalog=synthetic:10000:6:anticorrelated:3" -workers 8
//
// Endpoints: GET /v1/datasets, POST /v1/datasets (CSV upload),
// POST /v1/select, POST /v1/evaluate, GET /v1/stats (frozen v1 shims),
// and the v2 surface: the batched POST /v2/select (array of semantic
// queries + one exec policy block with per-request priority, deadline,
// and max_queue; per-member error slots) plus GET /v2/datasets,
// POST /v2/datasets, and GET /v2/stats with the typed {code, message}
// error envelope. Scheduling is also reachable via the X-Fam-Priority /
// X-Fam-Deadline-Ms / X-Fam-Max-Queue headers on any query endpoint;
// shed requests answer 429. The server shuts down gracefully on
// SIGINT/SIGTERM: in-flight requests get -shutdown-grace to finish
// before the listener and the engine close.
//
//	curl -s localhost:8080/v1/select -d '{"dataset":"hotels","k":5,"seed":7}'
//	curl -s localhost:8080/v2/select -d '{"queries":[{"dataset":"hotels","k":3,"seed":7},{"dataset":"hotels","k":5,"seed":7}]}'
//	curl -s 'localhost:8080/v1/datasets?name=mine' --data-binary @mine.csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	fam "github.com/regretlab/fam"
	"github.com/regretlab/fam/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "famserve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("famserve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		workers  = fs.Int("workers", 0, "shared worker-pool size multiplexed across all queries (0 = all CPUs)")
		prepCap  = fs.Int("prep-cache", 0, "preprocessing cache capacity in entries (0 = default, negative = unbounded)")
		resCap   = fs.Int("result-cache", 0, "result cache capacity in entries (0 = default, negative = unbounded)")
		prepMB   = fs.Int64("prep-cache-mb", 0, "preprocessing cache byte budget in MiB (0 = no byte budget)")
		resMB    = fs.Int64("result-cache-mb", 0, "result cache byte budget in MiB (0 = no byte budget)")
		prepTTL  = fs.Duration("prep-ttl", 0, "preprocessing cache entry lifetime (0 = never expire)")
		resTTL   = fs.Duration("result-ttl", 0, "result cache entry lifetime (0 = never expire)")
		uploadMB = fs.Int64("max-upload-mb", 0, "CSV upload size cap in MiB for POST /v1/datasets (0 = default 32, negative = uploads disabled)")
		batchCap = fs.Int("max-batch", 0, "maximum queries per POST /v2/select batch (0 = default 256)")
		policy   = fs.String("grant-policy", fam.GrantPolicyEDF, "worker-pool helper-grant policy: edf (weighted priority + earliest-deadline-first) or fifo (arrival order)")
		maxQueue = fs.Int("max-queue", 0, "shed requests (429) arriving while more helper requests than this are queued, unless the request sets its own max_queue (0 = no server-side bound)")
		specs    = fs.String("datasets", "hotels:200", "comma-separated dataset specs: [name=]kind[:n[:seed]] or [name=]synthetic[:n[:d[:corr[:seed]]]]")
		ces      = fs.Float64("ces", 0, "use CES utilities with this rho for every dataset (0 = uniform linear)")
		grace    = fs.Duration("shutdown-grace", 10*time.Second, "graceful-shutdown window for in-flight requests")
		logDest  = log.New(out, "famserve: ", log.LstdFlags)
	)
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *policy != fam.GrantPolicyEDF && *policy != fam.GrantPolicyFIFO {
		return fmt.Errorf("unknown -grant-policy %q (want %s|%s)", *policy, fam.GrantPolicyEDF, fam.GrantPolicyFIFO)
	}
	engine, infos, err := buildEngine(fam.EngineConfig{
		Workers:          *workers,
		PrepCacheSize:    *prepCap,
		ResultCacheSize:  *resCap,
		PrepCacheBytes:   *prepMB << 20,
		ResultCacheBytes: *resMB << 20,
		PrepCacheTTL:     *prepTTL,
		ResultCacheTTL:   *resTTL,
		GrantPolicy:      *policy,
	}, *specs, *ces)
	if err != nil {
		return err
	}
	defer engine.Close()
	for _, info := range infos {
		logDest.Printf("dataset %q: n=%d dim=%d dist=%s", info.Name, info.N, info.Dim, info.Distribution)
	}

	maxUpload := *uploadMB << 20
	if *uploadMB < 0 {
		maxUpload = -1
	}
	handler := serve.NewHandlerConfig(engine, serve.HandlerConfig{
		MaxUploadBytes:  maxUpload,
		MaxBatchQueries: *batchCap,
		MaxQueue:        *maxQueue,
	})
	srv := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logDest.Printf("listening on %s (%d pool workers)", *addr, engine.Stats().PoolWorkers)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logDest.Printf("shutting down (grace %v)", *grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// buildEngine constructs an engine and registers every dataset of the
// spec string under a uniform-linear (or CES) distribution.
func buildEngine(cfg fam.EngineConfig, specs string, ces float64) (*fam.Engine, []fam.DatasetInfo, error) {
	regs, err := parseSpecs(specs)
	if err != nil {
		return nil, nil, err
	}
	engine := fam.NewEngine(cfg)
	for _, reg := range regs {
		var dist fam.Distribution
		if ces > 0 {
			dist, err = fam.CESUniform(reg.ds.Dim(), ces)
		} else {
			dist, err = fam.UniformLinear(reg.ds.Dim())
		}
		if err != nil {
			engine.Close()
			return nil, nil, err
		}
		if err := engine.Register(reg.name, reg.ds, dist); err != nil {
			engine.Close()
			return nil, nil, fmt.Errorf("registering %q: %w", reg.name, err)
		}
	}
	return engine, engine.Datasets(), nil
}

// spec is one parsed dataset registration.
type spec struct {
	name string
	ds   *fam.Dataset
}

// parseSpecs parses the -datasets flag: comma-separated entries of the
// form [name=]kind[:n[:seed]], with synthetic additionally taking
// [:d[:corr]] between n and seed: synthetic:n:d:corr:seed.
func parseSpecs(s string) ([]spec, error) {
	var out []spec
	seen := map[string]bool{}
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name := ""
		if eq := strings.IndexByte(item, '='); eq >= 0 {
			name, item = item[:eq], item[eq+1:]
		}
		parts := strings.Split(item, ":")
		kind := parts[0]
		if name == "" {
			name = kind
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate dataset name %q (use name=kind:... to disambiguate)", name)
		}
		seen[name] = true
		ds, err := buildDataset(kind, parts[1:])
		if err != nil {
			return nil, fmt.Errorf("dataset spec %q: %w", item, err)
		}
		out = append(out, spec{name: name, ds: ds})
	}
	if len(out) == 0 {
		return nil, errors.New("no datasets configured")
	}
	return out, nil
}

func buildDataset(kind string, args []string) (*fam.Dataset, error) {
	num := func(i, def int) (int, error) {
		if i >= len(args) || args[i] == "" {
			return def, nil
		}
		return strconv.Atoi(args[i])
	}
	if kind == "synthetic" {
		n, err := num(0, 1000)
		if err != nil {
			return nil, err
		}
		d, err := num(1, 6)
		if err != nil {
			return nil, err
		}
		corr := fam.Independent
		if len(args) > 2 && args[2] != "" {
			switch args[2] {
			case "independent":
				corr = fam.Independent
			case "correlated":
				corr = fam.Correlated
			case "anticorrelated":
				corr = fam.Anticorrelated
			case "spherical":
				corr = fam.Spherical
			default:
				return nil, fmt.Errorf("unknown correlation %q", args[2])
			}
		}
		seed, err := num(3, 1)
		if err != nil {
			return nil, err
		}
		return fam.Synthetic(n, d, corr, uint64(seed))
	}

	n, err := num(0, 1000)
	if err != nil {
		return nil, err
	}
	seed, err := num(1, 1)
	if err != nil {
		return nil, err
	}
	switch kind {
	case "hotels":
		return fam.Hotels(n, uint64(seed))
	case "nba":
		return fam.SimulatedNBA(n, uint64(seed))
	case "nba22":
		return fam.SimulatedNBA22(n, uint64(seed))
	case "household":
		return fam.SimulatedHousehold(n, uint64(seed))
	case "forestcover":
		return fam.SimulatedForestCover(n, uint64(seed))
	case "uscensus":
		return fam.SimulatedUSCensus(n, uint64(seed))
	default:
		return nil, fmt.Errorf("unknown dataset kind %q (want hotels|nba|nba22|household|forestcover|uscensus|synthetic)", kind)
	}
}
