// Command famrouter is the cluster front end over N famserve
// replicas: one address that terminates the whole famserve API and
// routes every request to a replica chosen by the routing policy.
// Instance-key affinity (the default) sends queries that share a
// preprocessing instance to one owner replica, so the cluster pays a
// dataset's ~half-second cold preprocessing once instead of once per
// replica — the distributed analogue of the engine's batch planner.
//
// Usage:
//
//	famrouter -replicas http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//	famrouter -addr :8070 -replicas ... -router-policy least-loaded
//
// The router polls each replica's GET /healthz on -health-interval;
// a replica is marked down after -fail-threshold consecutive failed
// probes (or immediately on a transport error while forwarding) and
// marked up again after one good probe. v2 batches scatter across
// replicas by instance-key group and gather in order; dataset uploads
// broadcast to every routable replica. GET /metrics exposes
// famrouter_* series: per-replica routed/retried/failed/transition
// counters, health gauges, and route-decision counts by reason.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/regretlab/fam/internal/cluster"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "famrouter:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("famrouter", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8070", "listen address")
		replicas   = fs.String("replicas", "", "comma-separated replica base URLs, e.g. http://127.0.0.1:8081,http://127.0.0.1:8082")
		policyName = fs.String("router-policy", "affinity", "routing policy: affinity, round-robin, least-loaded, or weighted")
		interval   = fs.Duration("health-interval", 500*time.Millisecond, "period between replica health-check rounds")
		timeout    = fs.Duration("health-timeout", 2*time.Second, "per-replica health probe timeout")
		failN      = fs.Int("fail-threshold", 2, "consecutive failed probes that mark a replica down")
		retries    = fs.Int("retries", 1, "additional replicas to try after a transport failure")
		cooldown   = fs.Duration("shed-cooldown", 2*time.Second, "how long one observed 429/503 steers affinity away from a replica")
		shedMax    = fs.Float64("shed-threshold", 0.5, "health-check shed rate above which affinity avoids the owner replica")
		grace      = fs.Duration("shutdown-grace", 10*time.Second, "graceful-shutdown window for in-flight requests")
		logger     = slog.New(slog.NewJSONHandler(out, nil))
	)
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *replicas == "" {
		return fmt.Errorf("missing -replicas (comma-separated base URLs)")
	}
	urls := strings.Split(*replicas, ",")
	for i := range urls {
		urls[i] = strings.TrimSpace(urls[i])
	}
	reg, err := cluster.NewRegistry(urls)
	if err != nil {
		return err
	}
	policy, err := cluster.NewPolicy(*policyName, reg)
	if err != nil {
		return err
	}
	if aff, ok := policy.(*cluster.Affinity); ok {
		aff.ShedCooldown = *cooldown
		aff.ShedThreshold = *shedMax
	}

	checker := cluster.NewHealthChecker(reg, nil)
	checker.Interval = *interval
	checker.Timeout = *timeout
	checker.FailThreshold = *failN
	checker.Log = logger
	// One synchronous round so the first request already has routable
	// replicas (replicas that are genuinely down just stay down).
	checker.CheckOnce(context.Background())
	checker.Start()
	defer checker.Stop()

	router := cluster.NewRouter(reg, cluster.RouterConfig{
		Policy:  policy,
		Retries: *retries,
		Log:     logger,
	})
	srv := &http.Server{Addr: *addr, Handler: router}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		up := len(reg.UpReplicas())
		logger.Info("listening", "addr", *addr, "policy", policy.Name(), "replicas", len(reg.Replicas()), "up", up)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down", "grace", grace.String())
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
